//! The declarative scenario specification: dataset × scale × model ×
//! protocol × defense × attack, plus the `dynamics` block describing how the
//! participant population behaves over time.
//!
//! A [`ScenarioSpec`] is a plain value: build it in code, or parse it from a
//! JSON document (see `crates/scenarios/README.md` for the format). Specs
//! compose into named [`SuiteSpec`]s whose entries are *generators* — a
//! plain scenario, or a [`SuiteEntry::Sweep`] expanding a template over a
//! swept field. Built-ins: [`builtin_suite`] (the three canonical
//! workloads), [`participation_sweep_suite`] (Fig. 1 as a suite),
//! [`defense_dynamics_grid_suite`] (every defense × every dynamics) and
//! [`pers_gossip_churn_suite`] (view personalization under churn).

use crate::json::{fmt_f64, Json, ObjBuilder};
use cia_data::presets::{Preset, Scale};
use cia_models::SharingPolicy;
use serde::{Deserialize, Serialize};

/// Which recommendation model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Generalized matrix factorization (evaluated on all three datasets).
    Gmf,
    /// Personalized ranking metric embedding (POI datasets only).
    Prme,
}

impl ModelKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gmf => "GMF",
            ModelKind::Prme => "PRME",
        }
    }

    /// Parses `"gmf" | "prme"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "gmf" => Some(ModelKind::Gmf),
            "prme" => Some(ModelKind::Prme),
            _ => None,
        }
    }
}

/// Which collaborative protocol to train over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// FedAvg federated learning.
    Fl,
    /// Rand-Gossip decentralized learning.
    RandGossip,
    /// Pers-Gossip personalized decentralized learning.
    PersGossip,
}

impl ProtocolKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Fl => "FL",
            ProtocolKind::RandGossip => "Rand-Gossip",
            ProtocolKind::PersGossip => "Pers-Gossip",
        }
    }

    /// Parses `"fl" | "rand-gossip" | "pers-gossip"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        match s.to_ascii_lowercase().as_str() {
            "fl" => Some(ProtocolKind::Fl),
            "rand-gossip" | "randgossip" => Some(ProtocolKind::RandGossip),
            "pers-gossip" | "persgossip" => Some(ProtocolKind::PersGossip),
            _ => None,
        }
    }

    /// Whether the protocol is decentralized.
    pub fn is_gossip(self) -> bool {
        !matches!(self, ProtocolKind::Fl)
    }
}

/// Which defense the participants deploy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Full model sharing, no defense.
    None,
    /// The Share-less policy (§III-D) with regularization factor τ.
    ShareLess {
        /// Item-update regularization factor.
        tau: f32,
    },
    /// Local DP-SGD (§III-E) calibrated to a target ε (δ = 1e-6, clip = 2 as
    /// in Figure 5); `None` means noiseless clipping (ε = ∞).
    Dp {
        /// Target privacy budget, or `None` for ε = ∞.
        epsilon: Option<f64>,
    },
}

impl DefenseKind {
    /// The sharing policy implied by the defense.
    pub fn policy(self) -> SharingPolicy {
        match self {
            DefenseKind::ShareLess { tau } => SharingPolicy::ShareLess { tau },
            _ => SharingPolicy::Full,
        }
    }
}

/// Scale-dependent simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleParams {
    /// FL communication rounds.
    pub fl_rounds: u64,
    /// Gossip rounds.
    pub gl_rounds: u64,
    /// FL attack-evaluation cadence.
    pub fl_eval_every: u64,
    /// Gossip attack-evaluation cadence.
    pub gl_eval_every: u64,
    /// Local epochs per FL round.
    pub local_epochs: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Community size `K` (the paper's default is 50).
    pub k: usize,
    /// Negatives sampled for ranking evaluation (the NCF protocol uses 100).
    pub eval_negatives: usize,
    /// Held-out items per user on POI datasets (for F1).
    pub poi_holdout: usize,
}

impl ScaleParams {
    /// The parameters for a given scale.
    pub fn of(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => ScaleParams {
                fl_rounds: 8,
                gl_rounds: 40,
                fl_eval_every: 2,
                gl_eval_every: 10,
                local_epochs: 2,
                dim: 8,
                k: 5,
                eval_negatives: 20,
                poi_holdout: 3,
            },
            Scale::Small => ScaleParams {
                fl_rounds: 20,
                gl_rounds: 400,
                fl_eval_every: 2,
                gl_eval_every: 40,
                local_epochs: 2,
                dim: 8,
                k: 20,
                eval_negatives: 50,
                poi_holdout: 5,
            },
            Scale::Paper => ScaleParams {
                fl_rounds: 30,
                gl_rounds: 1500,
                fl_eval_every: 3,
                gl_eval_every: 100,
                local_epochs: 2,
                dim: 8,
                k: 50,
                eval_negatives: 100,
                poi_holdout: 5,
            },
            // Memory-budget stress profile: a handful of rounds is enough to
            // exercise the sharded lazy round path; full attack sweeps at this
            // scale are out of scope (use the env-gated bench instead).
            Scale::Million => ScaleParams {
                fl_rounds: 3,
                gl_rounds: 50,
                fl_eval_every: 1,
                gl_eval_every: 10,
                local_epochs: 1,
                dim: 8,
                k: 50,
                eval_negatives: 100,
                poi_holdout: 5,
            },
        }
    }

    /// Rounds for a protocol.
    pub fn rounds(&self, protocol: ProtocolKind) -> u64 {
        if protocol.is_gossip() {
            self.gl_rounds
        } else {
            self.fl_rounds
        }
    }

    /// Attack-evaluation cadence for a protocol.
    pub fn eval_every(&self, protocol: ProtocolKind) -> u64 {
        if protocol.is_gossip() {
            self.gl_eval_every
        } else {
            self.fl_eval_every
        }
    }
}

/// How a sybil coalition chooses which node ids it controls.
///
/// The paper's coalition sits on evenly spaced ids for the whole run.
/// Adaptive strategies model a strictly stronger adversary with a network
/// vantage point: the coalition starts from the static placement, passively
/// observes traffic for a warm-up window, then relocates its sybil
/// identities onto the top-scoring positions before the attack proper
/// begins. Momentum state for retained members survives the relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Evenly spaced node ids, fixed for the whole run (the paper's rule).
    Static,
    /// Relocate onto the nodes with the highest observed traffic
    /// (accumulated view in-degree, ties broken by delivered-message count,
    /// then by id).
    Degree,
    /// Relocate greedily to maximize the number of distinct senders the
    /// coalition would have observed during the warm-up (max-coverage over
    /// the delivery log, the observation analogue of the per-community
    /// `upper_bound_online` coverage bound).
    CoverageGreedy,
}

impl PlacementStrategy {
    /// The canonical spelling used in spec documents.
    pub fn name(self) -> &'static str {
        match self {
            PlacementStrategy::Static => "static",
            PlacementStrategy::Degree => "degree",
            PlacementStrategy::CoverageGreedy => "coverage-greedy",
        }
    }

    /// Parses `"static" | "degree" | "coverage-greedy"` (case-insensitive).
    pub fn parse(s: &str) -> Option<PlacementStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "static" => Some(PlacementStrategy::Static),
            "degree" => Some(PlacementStrategy::Degree),
            "coverage-greedy" | "greedy" => Some(PlacementStrategy::CoverageGreedy),
            _ => None,
        }
    }

    /// Whether the strategy relocates after a warm-up window.
    pub fn is_adaptive(self) -> bool {
        !matches!(self, PlacementStrategy::Static)
    }
}

/// How the participant population behaves over time. The default block is
/// fully static — every scenario is a dynamics scenario, most with the
/// identity dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsSpec {
    /// Per-round probability that an online participant goes offline
    /// (churn). The stationary offline fraction is
    /// `leave_prob / (leave_prob + join_prob)`.
    pub leave_prob: f64,
    /// Per-round probability that an offline participant rejoins.
    pub join_prob: f64,
    /// Fraction of participants online at round 0.
    pub initial_online: f64,
    /// Fraction of participants that are stragglers: after each round they
    /// act in, they sit out a random number of rounds.
    pub straggler_fraction: f64,
    /// Mean of the straggler delay distribution (rounds; exponential,
    /// rounded up — the same family as the gossip view-refresh interval).
    pub straggler_mean_delay: f64,
    /// Independent per-round participation sampling on top of churn
    /// (1.0 = everyone eligible acts).
    pub participation: f64,
    /// Size of the adversarial sybil coalition: colluding nodes that are
    /// always online, never straggle, and pool their observations
    /// (Algorithm 2 line 14). Gossip protocols only.
    pub sybils: usize,
    /// How the coalition chooses its node placements. Adaptive strategies
    /// spend [`DynamicsSpec::placement_warmup`] rounds observing traffic
    /// from the static positions, then relocate.
    pub placement: PlacementStrategy,
    /// Warm-up rounds of passive traffic observation before an adaptive
    /// relocation. A window at or beyond the horizon never fires, degrading
    /// the run to static placement.
    pub placement_warmup: u64,
}

impl Default for DynamicsSpec {
    fn default() -> Self {
        DynamicsSpec {
            leave_prob: 0.0,
            join_prob: 1.0,
            initial_online: 1.0,
            straggler_fraction: 0.0,
            straggler_mean_delay: 3.0,
            participation: 1.0,
            sybils: 0,
            placement: PlacementStrategy::Static,
            placement_warmup: 10,
        }
    }
}

impl DynamicsSpec {
    /// Whether the block is the identity dynamics (static population).
    pub fn is_static(&self) -> bool {
        self.leave_prob == 0.0
            && self.initial_online >= 1.0
            && self.straggler_fraction == 0.0
            && self.participation >= 1.0
            && self.sybils == 0
    }
}

/// The synthetic query workload a `scenario serve` run drives against a
/// training scenario — who asks, how often, how much is remembered.
///
/// Kept beside (not inside) [`ScenarioSpec`]: serving is read-only and must
/// never perturb a training transcript, so the workload is deliberately
/// outside the spec fingerprint and the JSONL spec echo.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWorkload {
    /// Minimum number of queries to answer (the stream keeps going while
    /// training runs, then drains any remainder against the final snapshot).
    pub queries: u64,
    /// Zipf exponent of the user popularity skew (0 = uniform).
    pub zipf_s: f64,
    /// Ranking length per query.
    pub top_k: usize,
    /// Per-epoch ranking cache bound (entries).
    pub cache_capacity: usize,
}

impl Default for ServeWorkload {
    fn default() -> Self {
        ServeWorkload { queries: 2000, zipf_s: 1.1, top_k: 20, cache_capacity: 256 }
    }
}

/// One scenario: everything needed to run a workload end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (JSONL records and checkpoint files key on it).
    pub name: String,
    /// Dataset preset.
    pub preset: Preset,
    /// Recommendation model.
    pub model: ModelKind,
    /// Collaborative protocol.
    pub protocol: ProtocolKind,
    /// Deployed defense.
    pub defense: DefenseKind,
    /// Number of adversary-controlled gossip nodes when no sybil block is
    /// given (0 or 1 = single adversary via the all-placements sweep; ≥ 2 =
    /// a colluding coalition with parameter momentum). Ignored in FL.
    pub colluders: usize,
    /// Momentum coefficient β (Eq. 4).
    pub beta: f32,
    /// Community size override (defaults to the scale's `k` when `None`).
    pub k_override: Option<usize>,
    /// Scale profile.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Participant dynamics.
    pub dynamics: DynamicsSpec,
}

impl ScenarioSpec {
    /// A full-sharing, no-defense, single-adversary, static-population
    /// configuration.
    pub fn new(preset: Preset, model: ModelKind, protocol: ProtocolKind, scale: Scale) -> Self {
        ScenarioSpec {
            name: format!(
                "{}-{}-{}",
                preset.name().to_ascii_lowercase(),
                model.name().to_ascii_lowercase(),
                protocol.name().to_ascii_lowercase()
            ),
            preset,
            model,
            protocol,
            defense: DefenseKind::None,
            colluders: 0,
            beta: 0.99,
            k_override: None,
            scale,
            seed: 42,
            dynamics: DynamicsSpec::default(),
        }
    }

    /// Size of the adversarial coalition the gossip runner will actually
    /// field: the sybil block wins over the legacy `colluders` knob, and 0
    /// or 1 colluder means the all-placements sweep (no coalition engine).
    pub fn coalition_size(&self) -> usize {
        if self.dynamics.sybils > 0 {
            self.dynamics.sybils
        } else if self.colluders >= 2 {
            self.colluders
        } else {
            0
        }
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        let d = &self.dynamics;
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".to_string());
        }
        if !(0.0..=1.0).contains(&f64::from(self.beta)) {
            return Err(format!("{}: beta must be in [0, 1]", self.name));
        }
        if self.model == ModelKind::Prme && !self.preset.has_sequences() {
            return Err(format!(
                "{}: PRME needs check-in sequences; {} has none",
                self.name,
                self.preset.name()
            ));
        }
        for (label, p) in [
            ("leave_prob", d.leave_prob),
            ("join_prob", d.join_prob),
            ("straggler_fraction", d.straggler_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{}: {label} must be in [0, 1]", self.name));
            }
        }
        for (label, p) in [("initial_online", d.initial_online), ("participation", d.participation)]
        {
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("{}: {label} must be in (0, 1]", self.name));
            }
        }
        if d.leave_prob > 0.0 && d.join_prob == 0.0 {
            return Err(format!(
                "{}: leave_prob > 0 with join_prob = 0 drains the population",
                self.name
            ));
        }
        if d.straggler_fraction > 0.0 && d.straggler_mean_delay < 1.0 {
            return Err(format!("{}: straggler_mean_delay must be ≥ 1 round", self.name));
        }
        if d.sybils > 0 && !self.protocol.is_gossip() {
            return Err(format!(
                "{}: sybil coalitions need a gossip protocol (the FL adversary is the server)",
                self.name
            ));
        }
        if d.sybils > 0 && self.colluders > 0 {
            return Err(format!(
                "{}: set either dynamics.sybils or colluders, not both",
                self.name
            ));
        }
        if d.placement.is_adaptive() {
            if d.sybils == 0 {
                return Err(format!(
                    "{}: adaptive sybil placement needs dynamics.sybils > 0",
                    self.name
                ));
            }
            if d.placement_warmup == 0 {
                return Err(format!(
                    "{}: adaptive placement needs a warm-up window of at least one round",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Serializes into the spec JSON format.
    pub fn to_json(&self) -> Json {
        let defense = match self.defense {
            DefenseKind::None => ObjBuilder::new().str("kind", "none").build(),
            DefenseKind::ShareLess { tau } => {
                ObjBuilder::new().str("kind", "share-less").num("tau", f64::from(tau)).build()
            }
            DefenseKind::Dp { epsilon } => {
                let b = ObjBuilder::new().str("kind", "dp");
                match epsilon {
                    Some(e) => b.num("epsilon", e).build(),
                    None => b.value("epsilon", Json::Null).build(),
                }
            }
        };
        let d = &self.dynamics;
        let dynamics = ObjBuilder::new()
            .num("leave_prob", d.leave_prob)
            .num("join_prob", d.join_prob)
            .num("initial_online", d.initial_online)
            .num("straggler_fraction", d.straggler_fraction)
            .num("straggler_mean_delay", d.straggler_mean_delay)
            .num("participation", d.participation)
            .num("sybils", d.sybils as f64)
            .str("placement", d.placement.name())
            .num("placement_warmup", d.placement_warmup as f64)
            .build();
        let mut b = ObjBuilder::new()
            .str("name", &self.name)
            .str("preset", &self.preset.name().to_ascii_lowercase())
            .str("model", &self.model.name().to_ascii_lowercase())
            .str("protocol", &self.protocol.name().to_ascii_lowercase())
            .value("defense", defense)
            .num("colluders", self.colluders as f64)
            .num("beta", f64::from(self.beta));
        if let Some(k) = self.k_override {
            b = b.num("k", k as f64);
        }
        b.str("scale", &self.scale.to_string())
            .num("seed", self.seed as f64)
            .value("dynamics", dynamics)
            .build()
    }

    /// Parses a scenario object. Missing optional fields take their
    /// defaults; `scale` and `seed` fall back to the suite-level values.
    /// Unknown keys are rejected — a typo that silently fell back to a
    /// default would run a materially different experiment.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(v: &Json, default_scale: Scale, default_seed: u64) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario needs a string `name`")?
            .to_string();
        let fail = |msg: &str| format!("scenario `{name}`: {msg}");
        check_keys(
            v,
            &[
                "name",
                "preset",
                "model",
                "protocol",
                "defense",
                "colluders",
                "beta",
                "k",
                "scale",
                "seed",
                "dynamics",
            ],
            &format!("scenario `{name}`"),
        )?;
        if let Some(d) = v.get("defense") {
            check_keys(d, &["kind", "tau", "epsilon"], &format!("scenario `{name}` defense"))?;
        }
        if let Some(d) = v.get("dynamics") {
            check_keys(
                d,
                &[
                    "leave_prob",
                    "join_prob",
                    "initial_online",
                    "straggler_fraction",
                    "straggler_mean_delay",
                    "participation",
                    "sybils",
                    "placement",
                    "placement_warmup",
                ],
                &format!("scenario `{name}` dynamics"),
            )?;
        }
        // Every reader distinguishes *absent* (take the default) from
        // *present but mistyped/unrepresentable* (error) — a spec that names
        // a field gets exactly that field or a diagnostic, never a silent
        // default.
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => {
                    x.as_str().map(Some).ok_or_else(|| fail(&format!("`{key}` must be a string")))
                }
            }
        };
        let int_field = |obj: &Json, key: &str, label: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| fail(&format!("{label}`{key}` must be an integer below 2^53"))),
            }
        };
        let num_field = |obj: &Json, key: &str, label: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(x) => x
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| fail(&format!("{label}`{key}` must be a number"))),
            }
        };
        let preset = match str_field("preset")? {
            Some(s) => parse_preset(s).ok_or_else(|| fail("unknown `preset`"))?,
            None => Preset::MovieLens,
        };
        let model = match str_field("model")? {
            Some(s) => ModelKind::parse(s).ok_or_else(|| fail("unknown `model`"))?,
            None => ModelKind::Gmf,
        };
        let protocol = match str_field("protocol")? {
            Some(s) => ProtocolKind::parse(s).ok_or_else(|| fail("unknown `protocol`"))?,
            None => ProtocolKind::Fl,
        };
        let defense = match v.get("defense") {
            None => DefenseKind::None,
            Some(d) => {
                let kind = match d.get("kind") {
                    None => "none",
                    Some(x) => x.as_str().ok_or_else(|| fail("defense `kind` must be a string"))?,
                };
                match kind {
                    "none" => DefenseKind::None,
                    "share-less" | "shareless" => DefenseKind::ShareLess {
                        tau: d
                            .get("tau")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| fail("share-less defense needs `tau`"))?
                            as f32,
                    },
                    "dp" => DefenseKind::Dp {
                        epsilon: match d.get("epsilon") {
                            None => None,
                            Some(e) if e.is_null() => None,
                            Some(e) => {
                                Some(e.as_f64().ok_or_else(|| fail("`epsilon` must be numeric"))?)
                            }
                        },
                    },
                    _ => return Err(fail("unknown defense `kind`")),
                }
            }
        };
        let scale = match str_field("scale")? {
            Some(s) => Scale::parse(s).ok_or_else(|| fail("unknown `scale`"))?,
            None => default_scale,
        };
        let dynamics = match v.get("dynamics") {
            None => DynamicsSpec::default(),
            Some(d) => {
                let base = DynamicsSpec::default();
                let f = |key: &str, dflt: f64| -> Result<f64, String> {
                    Ok(num_field(d, key, "dynamics ")?.unwrap_or(dflt))
                };
                DynamicsSpec {
                    leave_prob: f("leave_prob", base.leave_prob)?,
                    join_prob: f("join_prob", base.join_prob)?,
                    initial_online: f("initial_online", base.initial_online)?,
                    straggler_fraction: f("straggler_fraction", base.straggler_fraction)?,
                    straggler_mean_delay: f("straggler_mean_delay", base.straggler_mean_delay)?,
                    participation: f("participation", base.participation)?,
                    sybils: int_field(d, "sybils", "dynamics ")?.unwrap_or(0) as usize,
                    placement: match d.get("placement") {
                        None => base.placement,
                        Some(x) => {
                            let s = x
                                .as_str()
                                .ok_or_else(|| fail("dynamics `placement` must be a string"))?;
                            PlacementStrategy::parse(s)
                                .ok_or_else(|| fail("unknown dynamics `placement`"))?
                        }
                    },
                    placement_warmup: int_field(d, "placement_warmup", "dynamics ")?
                        .unwrap_or(base.placement_warmup),
                }
            }
        };
        let spec = ScenarioSpec {
            preset,
            model,
            protocol,
            defense,
            colluders: int_field(v, "colluders", "")?.unwrap_or(0) as usize,
            beta: num_field(v, "beta", "")?.unwrap_or(0.99) as f32,
            k_override: int_field(v, "k", "")?.map(|k| k as usize),
            scale,
            seed: int_field(v, "seed", "")?.unwrap_or(default_seed),
            dynamics,
            name,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// A stable fingerprint of the spec (FNV-1a over the canonical JSON),
    /// used to refuse resuming a checkpoint against a different spec.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.to_json().render().bytes())
    }
}

/// FNV-1a over a byte stream — the crate's one hash, shared by spec
/// fingerprints and checkpoint file naming.
pub(crate) fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Rejects keys outside the schema — declarative configs must fail loudly
/// on typos, not silently fall back to defaults.
fn check_keys(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    if let Json::Obj(pairs) = v {
        for (k, _) in pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("{ctx}: unknown key `{k}` (allowed: {})", allowed.join(", ")));
            }
        }
    }
    Ok(())
}

fn parse_preset(s: &str) -> Option<Preset> {
    match s.to_ascii_lowercase().as_str() {
        "movielens" => Some(Preset::MovieLens),
        "foursquare" => Some(Preset::Foursquare),
        "gowalla" => Some(Preset::Gowalla),
        _ => None,
    }
}

/// A scenario field a sweep may range over. Numeric values are applied
/// through [`SweepField::apply`]; integer-valued fields reject fractional
/// sweep values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepField {
    /// `dynamics.participation` — the Fig. 1 axis (per-round sample size).
    Participation,
    /// `dynamics.leave_prob`.
    LeaveProb,
    /// `dynamics.join_prob`.
    JoinProb,
    /// `dynamics.initial_online`.
    InitialOnline,
    /// `dynamics.straggler_fraction`.
    StragglerFraction,
    /// `dynamics.straggler_mean_delay`.
    StragglerMeanDelay,
    /// `dynamics.sybils` (integer).
    Sybils,
    /// `dynamics.placement_warmup` (integer) — adaptive-placement bases.
    PlacementWarmup,
    /// `colluders` (integer).
    Colluders,
    /// Momentum coefficient `beta`.
    Beta,
    /// Community-size override `k` (integer).
    K,
    /// Master `seed` (integer) — repetition sweeps.
    Seed,
    /// `defense.tau` (requires a share-less defense on the base).
    DefenseTau,
    /// `defense.epsilon` (requires a DP defense on the base).
    DefenseEpsilon,
}

impl SweepField {
    /// The canonical spelling used in suite documents.
    pub fn name(self) -> &'static str {
        match self {
            SweepField::Participation => "dynamics.participation",
            SweepField::LeaveProb => "dynamics.leave_prob",
            SweepField::JoinProb => "dynamics.join_prob",
            SweepField::InitialOnline => "dynamics.initial_online",
            SweepField::StragglerFraction => "dynamics.straggler_fraction",
            SweepField::StragglerMeanDelay => "dynamics.straggler_mean_delay",
            SweepField::Sybils => "dynamics.sybils",
            SweepField::PlacementWarmup => "dynamics.placement_warmup",
            SweepField::Colluders => "colluders",
            SweepField::Beta => "beta",
            SweepField::K => "k",
            SweepField::Seed => "seed",
            SweepField::DefenseTau => "defense.tau",
            SweepField::DefenseEpsilon => "defense.epsilon",
        }
    }

    /// Parses a field path. The `dynamics.` prefix is optional for dynamics
    /// fields but valid *only* for them — `dynamics.seed` must fail loudly,
    /// not silently sweep the global seed.
    pub fn parse(s: &str) -> Option<SweepField> {
        fn dynamics_field(s: &str) -> Option<SweepField> {
            match s {
                "participation" => Some(SweepField::Participation),
                "leave_prob" => Some(SweepField::LeaveProb),
                "join_prob" => Some(SweepField::JoinProb),
                "initial_online" => Some(SweepField::InitialOnline),
                "straggler_fraction" => Some(SweepField::StragglerFraction),
                "straggler_mean_delay" => Some(SweepField::StragglerMeanDelay),
                "sybils" => Some(SweepField::Sybils),
                "placement_warmup" => Some(SweepField::PlacementWarmup),
                _ => None,
            }
        }
        if let Some(rest) = s.strip_prefix("dynamics.") {
            return dynamics_field(rest);
        }
        dynamics_field(s).or(match s {
            "colluders" => Some(SweepField::Colluders),
            "beta" => Some(SweepField::Beta),
            "k" => Some(SweepField::K),
            "seed" => Some(SweepField::Seed),
            "defense.tau" | "tau" => Some(SweepField::DefenseTau),
            "defense.epsilon" | "epsilon" => Some(SweepField::DefenseEpsilon),
            _ => None,
        })
    }

    /// Writes `value` into the field of `spec`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not representable (fractional
    /// integer, negative count) or the base spec lacks the swept defense.
    pub fn apply(self, spec: &mut ScenarioSpec, value: f64) -> Result<(), String> {
        let as_count = |value: f64| -> Result<usize, String> {
            if value >= 0.0 && value.fract() == 0.0 && value < 9_007_199_254_740_992.0 {
                Ok(value as usize)
            } else {
                Err(format!("sweep value {value} is not a non-negative integer"))
            }
        };
        let d = &mut spec.dynamics;
        match self {
            SweepField::Participation => d.participation = value,
            SweepField::LeaveProb => d.leave_prob = value,
            SweepField::JoinProb => d.join_prob = value,
            SweepField::InitialOnline => d.initial_online = value,
            SweepField::StragglerFraction => d.straggler_fraction = value,
            SweepField::StragglerMeanDelay => d.straggler_mean_delay = value,
            SweepField::Sybils => d.sybils = as_count(value)?,
            SweepField::PlacementWarmup => d.placement_warmup = as_count(value)? as u64,
            SweepField::Colluders => spec.colluders = as_count(value)?,
            SweepField::Beta => spec.beta = value as f32,
            SweepField::K => spec.k_override = Some(as_count(value)?),
            SweepField::Seed => spec.seed = as_count(value)? as u64,
            SweepField::DefenseTau => match &mut spec.defense {
                DefenseKind::ShareLess { tau } => *tau = value as f32,
                _ => {
                    return Err(
                        "sweeping defense.tau needs a share-less defense on the base".to_string()
                    )
                }
            },
            SweepField::DefenseEpsilon => match &mut spec.defense {
                DefenseKind::Dp { epsilon } => *epsilon = Some(value),
                _ => {
                    return Err(
                        "sweeping defense.epsilon needs a DP defense on the base".to_string()
                    )
                }
            },
        }
        Ok(())
    }
}

/// One entry of a suite: a single scenario, or a generator that expands into
/// one scenario per sweep value. A suite is a list of *generators*, not a
/// flat scenario list — [`SuiteSpec::expanded`] materializes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SuiteEntry {
    /// A single scenario, run as-is.
    One(ScenarioSpec),
    /// A parameterized sweep over one field.
    Sweep {
        /// The template scenario. Its `name` may contain a `{}` placeholder
        /// replaced by each sweep value; without one, `-<value>` is appended.
        base: ScenarioSpec,
        /// The swept field.
        field: SweepField,
        /// The values, in execution order.
        values: Vec<f64>,
    },
}

/// Instantiates a sweep scenario name from the base template.
fn sweep_name(template: &str, value: f64) -> String {
    let v = fmt_f64(value);
    if template.contains("{}") {
        template.replace("{}", &v)
    } else {
        format!("{template}-{v}")
    }
}

impl SuiteEntry {
    /// Expands the entry into concrete scenarios, validating each.
    ///
    /// # Errors
    ///
    /// Returns the first unrepresentable sweep value or validation failure.
    pub fn expand_into(&self, out: &mut Vec<ScenarioSpec>) -> Result<(), String> {
        match self {
            SuiteEntry::One(spec) => {
                spec.validate()?;
                out.push(spec.clone());
            }
            SuiteEntry::Sweep { base, field, values } => {
                if values.is_empty() {
                    return Err(format!("sweep `{}` has no values", base.name));
                }
                for &v in values {
                    let mut spec = base.clone();
                    field.apply(&mut spec, v).map_err(|e| format!("sweep `{}`: {e}", base.name))?;
                    spec.name = sweep_name(&base.name, v);
                    spec.validate()?;
                    out.push(spec);
                }
            }
        }
        Ok(())
    }

    /// Serializes the entry into its suite-document form.
    pub fn to_json(&self) -> Json {
        match self {
            SuiteEntry::One(spec) => spec.to_json(),
            SuiteEntry::Sweep { base, field, values } => {
                let sweep = ObjBuilder::new()
                    .str("field", field.name())
                    .value("values", Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()))
                    .build();
                match base.to_json() {
                    Json::Obj(mut pairs) => {
                        pairs.push(("sweep".to_string(), sweep));
                        Json::Obj(pairs)
                    }
                    other => other,
                }
            }
        }
    }
}

/// A named collection of scenario generators, run back to back into one
/// JSONL stream after [`SuiteSpec::expanded`] materializes the sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Suite name (stamped on every record).
    pub name: String,
    /// The generators, in execution order.
    pub entries: Vec<SuiteEntry>,
}

impl SuiteSpec {
    /// A suite of plain scenarios (no sweeps).
    pub fn flat(name: impl Into<String>, scenarios: Vec<ScenarioSpec>) -> SuiteSpec {
        SuiteSpec {
            name: name.into(),
            entries: scenarios.into_iter().map(SuiteEntry::One).collect(),
        }
    }

    /// Materializes the suite: every sweep expanded, every scenario
    /// validated, names checked for uniqueness.
    ///
    /// # Errors
    ///
    /// Returns the first expansion or validation failure.
    pub fn expanded(&self) -> Result<Vec<ScenarioSpec>, String> {
        let mut scenarios = Vec::new();
        for entry in &self.entries {
            entry.expand_into(&mut scenarios)?;
        }
        if scenarios.is_empty() {
            return Err("suite has no scenarios".to_string());
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != scenarios.len() {
            return Err("scenario names must be unique within a suite".to_string());
        }
        Ok(scenarios)
    }

    /// Parses a suite document:
    /// `{"suite": "name", "scale": "...", "seed": N, "scenarios": [...]}`.
    /// A scenario object may carry a `"sweep": {"field": ..., "values":
    /// [...]}` block turning it into a generator.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed scenario or field.
    pub fn parse(input: &str) -> Result<SuiteSpec, String> {
        let v = Json::parse(input)?;
        check_keys(&v, &["suite", "scale", "seed", "scenarios"], "suite")?;
        let name = match v.get("suite") {
            None => "unnamed".to_string(),
            Some(x) => x.as_str().ok_or("suite: `suite` must be a string")?.to_string(),
        };
        let default_scale = match v.get("scale") {
            None => Scale::Smoke,
            Some(x) => {
                let s = x.as_str().ok_or("suite: `scale` must be a string")?;
                Scale::parse(s).ok_or("suite: unknown `scale`")?
            }
        };
        let default_seed = match v.get("seed") {
            None => 42,
            Some(x) => x.as_u64().ok_or("suite: `seed` must be an integer below 2^53")?,
        };
        let raw =
            v.get("scenarios").and_then(Json::as_arr).ok_or("suite needs a `scenarios` array")?;
        if raw.is_empty() {
            return Err("suite has no scenarios".to_string());
        }
        let mut entries = Vec::with_capacity(raw.len());
        for s in raw {
            entries.push(parse_entry(s, default_scale, default_seed)?);
        }
        let suite = SuiteSpec { name, entries };
        // Expand eagerly so malformed sweeps and name collisions fail at
        // load time, not mid-run.
        suite.expanded()?;
        Ok(suite)
    }

    /// Serializes the suite into its JSON document form (sweeps stay
    /// sweeps, not expanded lists).
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .str("suite", &self.name)
            .value("scenarios", Json::Arr(self.entries.iter().map(SuiteEntry::to_json).collect()))
            .build()
    }
}

/// Parses one suite entry: a scenario object, optionally carrying a `sweep`
/// generator block.
fn parse_entry(v: &Json, default_scale: Scale, default_seed: u64) -> Result<SuiteEntry, String> {
    let Some(sweep) = v.get("sweep") else {
        return Ok(SuiteEntry::One(ScenarioSpec::from_json(v, default_scale, default_seed)?));
    };
    let ctx = format!("scenario `{}` sweep", v.get("name").and_then(Json::as_str).unwrap_or("?"));
    check_keys(sweep, &["field", "values"], &ctx)?;
    let field = sweep
        .get("field")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: needs a string `field`"))?;
    let field =
        SweepField::parse(field).ok_or_else(|| format!("{ctx}: unknown field `{field}`"))?;
    let raw_values = sweep
        .get("values")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: needs a `values` array"))?;
    let mut values = Vec::with_capacity(raw_values.len());
    for x in raw_values {
        values.push(x.as_f64().ok_or_else(|| format!("{ctx}: values must be numbers"))?);
    }
    if values.is_empty() {
        return Err(format!("{ctx}: needs at least one value"));
    }
    // The base spec is the object minus the generator block.
    let base_obj = match v {
        Json::Obj(pairs) => {
            Json::Obj(pairs.iter().filter(|(k, _)| k != "sweep").cloned().collect())
        }
        other => other.clone(),
    };
    let base = ScenarioSpec::from_json(&base_obj, default_scale, default_seed)?;
    Ok(SuiteEntry::Sweep { base, field, values })
}

/// The built-in suite: the three canonical deployment questions.
///
/// * `baseline-static` — the paper's own setting: federated GMF on
///   MovieLens, full participation, no dynamics.
/// * `churn-20pct` — the same workload under realistic availability: 20% of
///   the population offline in steady state plus a straggler tail.
/// * `colluding-sybils` — Rand-Gossip with a 4-node always-online sybil
///   coalition pooling observations.
pub fn builtin_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let mut baseline =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    baseline.name = "baseline-static".to_string();
    baseline.seed = seed;

    let mut churn = ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    churn.name = "churn-20pct".to_string();
    churn.seed = seed;
    churn.dynamics = DynamicsSpec {
        // Stationary offline fraction 0.05 / (0.05 + 0.2) = 20%.
        leave_prob: 0.05,
        join_prob: 0.2,
        initial_online: 0.9,
        straggler_fraction: 0.1,
        straggler_mean_delay: 2.0,
        ..DynamicsSpec::default()
    };

    let mut sybils =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, scale);
    sybils.name = "colluding-sybils".to_string();
    sybils.seed = seed;
    sybils.dynamics = DynamicsSpec { sybils: 4, ..DynamicsSpec::default() };

    SuiteSpec::flat(format!("builtin-{scale}"), vec![baseline, churn, sybils])
}

/// The churn block shared by the dynamics-heavy built-ins: 20% offline in
/// steady state plus a straggler tail (the `churn-20pct` setting).
fn churn_dynamics() -> DynamicsSpec {
    DynamicsSpec {
        leave_prob: 0.05,
        join_prob: 0.2,
        initial_online: 0.9,
        straggler_fraction: 0.1,
        straggler_mean_delay: 2.0,
        ..DynamicsSpec::default()
    }
}

/// The participation sweep (Fig. 1 as a suite): federated GMF on MovieLens
/// with the per-round sample fraction swept from 10% to full participation.
/// One sweep generator, five scenarios — `participation-0.1` …
/// `participation-1`.
pub fn participation_sweep_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let mut base = ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    base.name = "participation-{}".to_string();
    base.seed = seed;
    SuiteSpec {
        name: format!("participation-sweep-{scale}"),
        entries: vec![SuiteEntry::Sweep {
            base,
            field: SweepField::Participation,
            values: vec![0.1, 0.25, 0.5, 0.75, 1.0],
        }],
    }
}

/// The defense × dynamics grid: every [`DefenseKind`] family crossed with
/// the three canonical dynamics (churn + stragglers, a heavy straggler tail,
/// an always-online sybil coalition). Sybil cells run Rand-Gossip (the FL
/// adversary is the server, so sybils are a gossip concept); the others run
/// FedAvg. Cell names are `<defense>-x-<dynamics>`.
pub fn defense_dynamics_grid_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let defenses: [(&str, DefenseKind); 3] = [
        ("none", DefenseKind::None),
        ("shareless", DefenseKind::ShareLess { tau: 0.5 }),
        ("dp10", DefenseKind::Dp { epsilon: Some(10.0) }),
    ];
    let stragglers = DynamicsSpec {
        straggler_fraction: 0.4,
        straggler_mean_delay: 3.0,
        ..DynamicsSpec::default()
    };
    let sybils = DynamicsSpec { sybils: 4, ..DynamicsSpec::default() };
    let dynamics: [(&str, ProtocolKind, DynamicsSpec); 3] = [
        ("churn", ProtocolKind::Fl, churn_dynamics()),
        ("stragglers", ProtocolKind::Fl, stragglers),
        ("sybils", ProtocolKind::RandGossip, sybils),
    ];
    let mut scenarios = Vec::with_capacity(defenses.len() * dynamics.len());
    for (dyn_name, protocol, d) in &dynamics {
        for (def_name, defense) in &defenses {
            let mut s = ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, *protocol, scale);
            s.name = format!("{def_name}-x-{dyn_name}");
            s.seed = seed;
            s.defense = *defense;
            s.dynamics = *d;
            scenarios.push(s);
        }
    }
    SuiteSpec::flat(format!("defense-dynamics-grid-{scale}"), scenarios)
}

/// Pers-Gossip under churn: does view personalization amplify or dampen the
/// attack when the population moves? Three all-placements runs —
/// personalized views over a static population, the same under churn, and a
/// Rand-Gossip churn control.
pub fn pers_gossip_churn_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let mut pers_static =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::PersGossip, scale);
    pers_static.name = "pers-static".to_string();
    pers_static.seed = seed;

    let mut pers_churn = pers_static.clone();
    pers_churn.name = "pers-churn".to_string();
    pers_churn.dynamics = churn_dynamics();

    let mut rand_churn =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, scale);
    rand_churn.name = "rand-churn".to_string();
    rand_churn.seed = seed;
    rand_churn.dynamics = churn_dynamics();

    SuiteSpec::flat(format!("pers-gossip-churn-{scale}"), vec![pers_static, pers_churn, rand_churn])
}

/// Adaptive sybil placement under churn: the same 4-node always-online
/// Rand-Gossip coalition with static (evenly spaced), degree-ranked and
/// coverage-greedy placement, everything else held equal. The adaptive cells
/// spend the first 10 rounds in passive traffic observation, then relocate —
/// the deliverable comparison is AAC(adaptive) ≥ AAC(static) at equal
/// coalition size.
pub fn adaptive_sybils_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let placements = [
        ("placement-static", PlacementStrategy::Static),
        ("placement-degree", PlacementStrategy::Degree),
        ("placement-greedy", PlacementStrategy::CoverageGreedy),
    ];
    let scenarios = placements
        .into_iter()
        .map(|(name, placement)| {
            let mut s = ScenarioSpec::new(
                Preset::MovieLens,
                ModelKind::Gmf,
                ProtocolKind::RandGossip,
                scale,
            );
            s.name = name.to_string();
            s.seed = seed;
            s.dynamics =
                DynamicsSpec { sybils: 4, placement, placement_warmup: 10, ..churn_dynamics() };
            s
        })
        .collect();
    SuiteSpec::flat(format!("adaptive-sybils-{scale}"), scenarios)
}

/// Every built-in suite name accepted by [`named_suite`] (and the CLI's
/// `--suite` flag).
pub const BUILTIN_SUITE_NAMES: [&str; 5] = [
    "builtin",
    "participation-sweep",
    "defense-dynamics-grid",
    "pers-gossip-churn",
    "adaptive-sybils",
];

/// Looks up a built-in suite by name.
pub fn named_suite(name: &str, scale: Scale, seed: u64) -> Option<SuiteSpec> {
    match name {
        "builtin" => Some(builtin_suite(scale, seed)),
        "participation-sweep" => Some(participation_sweep_suite(scale, seed)),
        "defense-dynamics-grid" => Some(defense_dynamics_grid_suite(scale, seed)),
        "pers-gossip-churn" => Some(pers_gossip_churn_suite(scale, seed)),
        "adaptive-sybils" => Some(adaptive_sybils_suite(scale, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_suite_has_three_valid_scenarios() {
        let suite = builtin_suite(Scale::Smoke, 7);
        let scenarios = suite.expanded().unwrap();
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[0].name, "baseline-static");
        assert!(scenarios[1].dynamics.leave_prob > 0.0);
        assert_eq!(scenarios[2].coalition_size(), 4);
    }

    #[test]
    fn participation_sweep_expands_one_generator_into_five() {
        let suite = participation_sweep_suite(Scale::Smoke, 7);
        assert_eq!(suite.entries.len(), 1, "the sweep is a generator, not a flat list");
        let scenarios = suite.expanded().unwrap();
        assert_eq!(scenarios.len(), 5);
        assert_eq!(scenarios[0].name, "participation-0.1");
        assert_eq!(scenarios[4].name, "participation-1");
        let fracs: Vec<f64> = scenarios.iter().map(|s| s.dynamics.participation).collect();
        assert_eq!(fracs, vec![0.1, 0.25, 0.5, 0.75, 1.0]);
        // Everything but the swept field is shared.
        for s in &scenarios {
            assert_eq!(s.protocol, ProtocolKind::Fl);
            assert_eq!(s.seed, 7);
        }
    }

    #[test]
    fn defense_grid_crosses_every_defense_with_every_dynamics() {
        let suite = defense_dynamics_grid_suite(Scale::Smoke, 3);
        let scenarios = suite.expanded().unwrap();
        assert_eq!(scenarios.len(), 9);
        let sybil_cells: Vec<&ScenarioSpec> =
            scenarios.iter().filter(|s| s.dynamics.sybils > 0).collect();
        assert_eq!(sybil_cells.len(), 3);
        assert!(sybil_cells.iter().all(|s| s.protocol.is_gossip()));
        assert_eq!(
            scenarios.iter().filter(|s| matches!(s.defense, DefenseKind::Dp { .. })).count(),
            3
        );
        assert!(scenarios.iter().any(|s| s.name == "shareless-x-churn"));
    }

    #[test]
    fn pers_gossip_churn_suite_pairs_protocols_under_identical_dynamics() {
        let suite = pers_gossip_churn_suite(Scale::Smoke, 11);
        let scenarios = suite.expanded().unwrap();
        assert_eq!(scenarios.len(), 3);
        let pers_churn = scenarios.iter().find(|s| s.name == "pers-churn").unwrap();
        let rand_churn = scenarios.iter().find(|s| s.name == "rand-churn").unwrap();
        assert_eq!(pers_churn.protocol, ProtocolKind::PersGossip);
        assert_eq!(rand_churn.protocol, ProtocolKind::RandGossip);
        assert_eq!(pers_churn.dynamics, rand_churn.dynamics, "churn control must match");
        assert!(pers_churn.dynamics.leave_prob > 0.0);
    }

    #[test]
    fn every_named_suite_expands_and_validates() {
        for name in BUILTIN_SUITE_NAMES {
            let suite = named_suite(name, Scale::Smoke, 42).unwrap();
            let scenarios = suite.expanded().unwrap();
            assert!(!scenarios.is_empty(), "{name} is empty");
        }
        assert!(named_suite("nope", Scale::Smoke, 42).is_none());
    }

    #[test]
    fn sweep_blocks_parse_and_expand() {
        let doc = r#"{"suite": "s", "scale": "smoke", "seed": 5, "scenarios": [
            {"name": "p{}", "sweep": {"field": "dynamics.participation",
                                      "values": [0.5, 1.0]}},
            {"name": "reps", "protocol": "rand-gossip",
             "sweep": {"field": "seed", "values": [1, 2, 3]}}
        ]}"#;
        let suite = SuiteSpec::parse(doc).unwrap();
        assert_eq!(suite.entries.len(), 2);
        let scenarios = suite.expanded().unwrap();
        assert_eq!(scenarios.len(), 5);
        assert_eq!(scenarios[0].name, "p0.5");
        assert_eq!(scenarios[1].name, "p1");
        assert_eq!(scenarios[2].name, "reps-1");
        assert_eq!(scenarios[2].seed, 1);
        assert_eq!(scenarios[4].seed, 3);
        // Sweeps survive the JSON roundtrip as generators.
        let reparsed = SuiteSpec::parse(&suite.to_json().render()).unwrap();
        assert_eq!(reparsed.entries, suite.entries);
    }

    #[test]
    fn malformed_sweeps_fail_at_parse_time() {
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "bogus", "values": [1]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("unknown field"));
        // A non-dynamics field under the dynamics prefix must not silently
        // resolve to the bare field.
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "dynamics.seed", "values": [1]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("unknown field"));
        assert!(SweepField::parse("dynamics.beta").is_none());
        assert_eq!(SweepField::parse("participation"), Some(SweepField::Participation));
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "seed", "values": []}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("value"));
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "seed", "values": [1.5]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("integer"));
        // Duplicate expanded names collide loudly.
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "seed", "values": [1, 1]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("unique"));
        // Sweeping a defense knob the base doesn't carry.
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "defense.tau", "values": [0.5]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("share-less"));
        // Expanded specs are validated: participation 0 is out of range.
        let doc = r#"{"suite": "s", "scenarios":
            [{"name": "x", "sweep": {"field": "dynamics.participation", "values": [0.0]}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("participation"));
    }

    #[test]
    fn spec_json_roundtrip() {
        let suite = builtin_suite(Scale::Smoke, 9);
        let doc = suite.to_json().render();
        let reparsed = SuiteSpec::parse(&doc).unwrap();
        assert_eq!(reparsed, suite);
    }

    #[test]
    fn suite_parsing_applies_defaults() {
        let doc = r#"{"suite": "mini", "scale": "smoke", "seed": 5,
                      "scenarios": [{"name": "a"}]}"#;
        let suite = SuiteSpec::parse(doc).unwrap();
        let scenarios = suite.expanded().unwrap();
        let s = &scenarios[0];
        assert_eq!(s.seed, 5);
        assert_eq!(s.scale, Scale::Smoke);
        assert_eq!(s.model, ModelKind::Gmf);
        assert!(s.dynamics.is_static());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s =
            ScenarioSpec::new(Preset::MovieLens, ModelKind::Prme, ProtocolKind::Fl, Scale::Smoke);
        assert!(s.validate().unwrap_err().contains("PRME"));
        s.model = ModelKind::Gmf;
        s.dynamics.sybils = 3;
        assert!(s.validate().unwrap_err().contains("gossip"));
        s.protocol = ProtocolKind::RandGossip;
        s.validate().unwrap();
        s.colluders = 2;
        assert!(s.validate().unwrap_err().contains("not both"));
        s.colluders = 0;
        s.dynamics.leave_prob = 0.5;
        s.dynamics.join_prob = 0.0;
        assert!(s.validate().unwrap_err().contains("drains"));
    }

    #[test]
    fn placement_fields_parse_validate_and_roundtrip() {
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "protocol": "rand-gossip",
            "dynamics": {"sybils": 3, "placement": "coverage-greedy", "placement_warmup": 7}}]}"#;
        let suite = SuiteSpec::parse(doc).unwrap();
        let s = &suite.expanded().unwrap()[0];
        assert_eq!(s.dynamics.placement, PlacementStrategy::CoverageGreedy);
        assert_eq!(s.dynamics.placement_warmup, 7);
        let reparsed = SuiteSpec::parse(&suite.to_json().render()).unwrap();
        assert_eq!(reparsed, suite);
        // Adaptive placement without a sybil coalition is rejected…
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "protocol": "rand-gossip",
            "dynamics": {"placement": "degree"}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("sybils"));
        // …as are a zero-round warm-up, an unknown strategy and a mistyped
        // field.
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "protocol": "rand-gossip",
            "dynamics": {"sybils": 2, "placement": "degree", "placement_warmup": 0}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("warm-up"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "protocol": "rand-gossip",
            "dynamics": {"sybils": 2, "placement": "closest"}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("placement"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "protocol": "rand-gossip",
            "dynamics": {"sybils": 2, "placement": 3}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("string"));
        // Static placement stays the default and is fingerprint-visible.
        let a = ScenarioSpec::new(
            Preset::MovieLens,
            ModelKind::Gmf,
            ProtocolKind::RandGossip,
            Scale::Smoke,
        );
        let mut b = a.clone();
        b.dynamics.sybils = 2;
        b.dynamics.placement = PlacementStrategy::Degree;
        assert_eq!(a.dynamics.placement, PlacementStrategy::Static);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn placement_warmup_is_sweepable() {
        let doc = r#"{"suite": "t", "scenarios": [{"name": "w{}", "protocol": "rand-gossip",
            "dynamics": {"sybils": 2, "placement": "degree"},
            "sweep": {"field": "dynamics.placement_warmup", "values": [5, 15]}}]}"#;
        let scenarios = SuiteSpec::parse(doc).unwrap().expanded().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].dynamics.placement_warmup, 5);
        assert_eq!(scenarios[1].dynamics.placement_warmup, 15);
        assert_eq!(SweepField::parse("placement_warmup"), Some(SweepField::PlacementWarmup));
        assert!(SweepField::parse("dynamics.placement").is_none(), "the strategy is not numeric");
    }

    #[test]
    fn adaptive_sybils_suite_holds_everything_but_placement_equal() {
        let scenarios = adaptive_sybils_suite(Scale::Smoke, 11).expanded().unwrap();
        assert_eq!(scenarios.len(), 3);
        let base = &scenarios[0];
        assert_eq!(base.dynamics.placement, PlacementStrategy::Static);
        for s in &scenarios[1..] {
            assert!(s.dynamics.placement.is_adaptive());
            let mut twin = s.clone();
            twin.name = base.name.clone();
            twin.dynamics.placement = base.dynamics.placement;
            assert_eq!(&twin, base, "{} differs from static beyond the placement", s.name);
        }
    }

    #[test]
    fn fingerprint_tracks_spec_changes() {
        let a =
            ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 43;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let doc = r#"{"suite": "dup", "scenarios": [{"name": "x"}, {"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("unique"));
    }

    #[test]
    fn mistyped_fields_fail_loudly() {
        // Present-but-wrong-typed fields must error, not fall back to
        // defaults — a string seed would otherwise silently run seed 42.
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "seed": "43"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("integer"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "seed": 9007199254740993}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("2^53"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "model": 5}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("string"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "beta": "0.5"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("number"));
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "dynamics": {"leave_prob": "lots"}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("number"));
        let doc = r#"{"suite": "t", "seed": "42", "scenarios": [{"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("integer"));
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "defense": {"kind": 3}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("string"));
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        // A typo in a dynamics field must not silently run a static
        // population.
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "dynamics": {"straggler_frac": 0.3}}]}"#;
        let err = SuiteSpec::parse(doc).unwrap_err();
        assert!(err.contains("straggler_frac"), "{err}");
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "colluderz": 3}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("colluderz"));
        let doc = r#"{"suite": "t", "sede": 1, "scenarios": [{"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("sede"));
    }
}
