//! Allowlisted fixture: the same constructs as `bad/determinism.rs`, each
//! carrying a reasoned allow comment — the whole file must lint clean.
use std::collections::HashMap;
use std::time::Instant;

fn histogram(xs: &[u64]) -> Vec<(u64, u64)> {
    // cia-lint: allow(D01, drained into a sorted Vec before anything observes order)
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_unstable();
    v
}

fn elapsed_micros() -> u128 {
    // cia-lint: allow(D02, fixture demonstrating the escape hatch; feeds nothing)
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}

fn truncate(x: u64) -> u32 {
    x as u32 // cia-lint: allow(D05, caller validates x < 2^32 at the API boundary)
}

fn spawn_worker() {
    // cia-lint: allow(D06, fixture demonstrating the escape hatch; joins immediately)
    std::thread::spawn(|| {});
}

fn total(xs: &[f32]) -> f32 {
    // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order)
    xs.iter().sum::<f32>()
}
