//! Figure 1 / §II — the motivating example: identifying "health vulnerable"
//! users in a Foursquare-like dataset from models alone.
//!
//! A small community of users with ≥68% health-categorized visits (against a
//! 6.7% base rate) is planted; the server-side adversary crafts `V_target`
//! from the *public* category catalog (all Health-and-Medicine items) and
//! runs CIA with K = 3.

use crate::runner::ScaleParams;
use crate::tables::{pct, Table};
use cia_core::{CiaConfig, FlCia, ItemSetEvaluator};
use cia_data::presets::Scale;
use cia_data::{
    CategoryPlan, GroundTruth, HealthPlanting, LeaveOneOut, SyntheticConfig, UserId,
    HEALTH_CATEGORY,
};
use cia_federated::{FedAvg, FedAvgConfig};
use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

/// Regenerates the Figure 1 experiment.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let params = ScaleParams::of(scale);
    let (users, items, ipu) = match scale {
        Scale::Smoke => (48, 240, 24),
        Scale::Small => (220, 600, 40),
        // Experiments cap at the paper shape; `Scale::Million` is a
        // bench-only memory profile (`repro` rejects it at the CLI).
        Scale::Paper | Scale::Million => (1083, 4000, 185),
    };
    let k = 3;
    let planting = HealthPlanting { num_users: k, health_fraction: 0.68 };
    let data = SyntheticConfig::builder()
        .name("Foursquare-like with health community")
        .users(users)
        .items(items)
        .communities((users / 20).clamp(4, 48))
        .interactions_per_user(ipu)
        .categories(CategoryPlan { health_item_fraction: 0.067, health_planting: Some(planting) })
        .seed(seed)
        .build()
        .generate();
    let categories = data.categories().expect("plan attached").clone();
    let split = LeaveOneOut::new(&data, params.eval_negatives, seed ^ 0x5EED).unwrap();

    // The adversary's target: every health-categorized item, straight from
    // the public catalog.
    let health_items = categories.items_in(HEALTH_CATEGORY);
    let truth = GroundTruth::for_target(&health_items, split.train_sets(), k);

    let spec =
        GmfSpec::new(data.num_items(), params.dim, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                UserId::new(u as u32),
                items.clone(),
                SharingPolicy::Full,
                seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();

    let evaluator = ItemSetEvaluator::new(spec, vec![health_items.clone()], false);
    let mut attack = FlCia::new(
        CiaConfig { k, beta: 0.99, eval_every: params.fl_eval_every, seed },
        evaluator,
        users,
        vec![truth.clone()],
        vec![None],
    );
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig {
            rounds: params.fl_rounds,
            local_epochs: params.local_epochs,
            seed,
            ..Default::default()
        },
    );
    sim.run(&mut attack);

    let predicted = attack.predict(0);
    let outcome = attack.outcome();

    // Health-visit fractions: the inferred community vs everyone.
    let frac_of = |u: UserId| categories.fraction_in(data.user(u).items(), HEALTH_CATEGORY);
    let community_frac: f64 =
        predicted.iter().map(|&u| frac_of(u)).sum::<f64>() / predicted.len().max(1) as f64;
    let overall_frac: f64 =
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        (0..users as u32).map(|u| frac_of(UserId::new(u))).sum::<f64>() / users as f64;

    let mut t = Table::new(
        format!("Figure 1 — CIA targeting health-vulnerable users ({scale} scale)"),
        &["Quantity", "Value"],
    );
    t.row(vec!["Health items in catalog".into(), health_items.len().to_string()]);
    t.row(vec![
        "Inferred community".into(),
        predicted.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join(", "),
    ]);
    t.row(vec![
        "True community (top-3 Jaccard)".into(),
        truth.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join(", "),
    ]);
    t.row(vec!["Attack accuracy %".into(), pct(outcome.max_aac)]);
    t.row(vec!["Community health-visit share %".into(), pct(community_frac)]);
    t.row(vec!["Population health-visit share %".into(), pct(overall_frac)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_health_community_is_found() {
        let tables = run(Scale::Smoke, 31);
        let rows = &tables[0].rows;
        let acc: f64 = rows[3][1].parse().unwrap();
        let community: f64 = rows[4][1].parse().unwrap();
        let overall: f64 = rows[5][1].parse().unwrap();
        // The inferred community is dominated by health visitors while the
        // population base rate stays low — the paper's 68% vs 6.7% contrast.
        assert!(acc >= 2.0 / 3.0 * 100.0, "accuracy {acc}");
        assert!(community > 3.0 * overall, "community {community} vs overall {overall}");
    }
}
