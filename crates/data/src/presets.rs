//! Dataset presets matching the paper's Table I, with scale profiles.
//!
//! | Dataset | Users | Items | Interactions |
//! |---|---|---|---|
//! | MovieLens-100k | 943 | 1 682 | 100 k ratings |
//! | Foursquare-NYC | 1 083 | 38 333 | 200 k check-ins |
//! | Gowalla-NYC | 718 | 32 924 | 185 932 check-ins |
//!
//! At [`Scale::Paper`] the user counts and per-user densities match Table I;
//! the two POI catalogs are scaled down (38 333 → 4 000, 32 924 → 3 500) so
//! that the `N` momentum models of CIA's Algorithm 1 fit in laptop memory
//! (substitution documented in `DESIGN.md` §3). Smaller profiles preserve the
//! community structure for tests, examples and benches.

use crate::{CategoryPlan, Dataset, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// How large a preset instantiation should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale configs for unit/integration tests and Criterion benches.
    Smoke,
    /// Tens-of-seconds configs for examples and quick reproductions.
    Small,
    /// Table I user counts (item catalogs scaled per `DESIGN.md` §3).
    Paper,
    /// 10⁶ users × 10⁵ items: the memory-budget stress profile. Every preset
    /// shares one shape at this scale; runs are only tractable through the
    /// sharded lazy client store (see `cia-models::store`).
    Million,
}

impl Scale {
    /// Parses `"smoke" | "small" | "paper" | "million"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            "million" => Some(Scale::Million),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Smoke => "smoke",
            Scale::Small => "small",
            Scale::Paper => "paper",
            Scale::Million => "million",
        };
        f.write_str(s)
    }
}

/// The three dataset shapes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// MovieLens-100k-like: dense ratings, no sequences.
    MovieLens,
    /// Foursquare-NYC-like: sparse check-ins with sequences and categories.
    Foursquare,
    /// Gowalla-NYC-like: sparse check-ins with sequences.
    Gowalla,
}

impl Preset {
    /// All presets, in the paper's order.
    pub const ALL: [Preset; 3] = [Preset::MovieLens, Preset::Foursquare, Preset::Gowalla];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::MovieLens => "MovieLens",
            Preset::Foursquare => "Foursquare",
            Preset::Gowalla => "Gowalla",
        }
    }

    /// Whether the preset generates check-in sequences (POI datasets).
    pub fn has_sequences(self) -> bool {
        !matches!(self, Preset::MovieLens)
    }

    /// Instantiates the preset at `scale` with `seed`.
    pub fn generate(self, scale: Scale, seed: u64) -> Dataset {
        match self {
            Preset::MovieLens => movielens_like(scale, seed),
            Preset::Foursquare => foursquare_like(scale, seed),
            Preset::Gowalla => gowalla_like(scale, seed),
        }
    }

    /// The shape `(users, items, interactions_per_user)` the preset will
    /// generate at `scale` — available without generating, so callers can
    /// validate scale parameters (negative-sample counts, holdout sizes)
    /// against the catalog before committing to a multi-second generation.
    pub fn dims(self, scale: Scale) -> (usize, u32, usize) {
        match self {
            Preset::MovieLens => dims(scale, (943, 1682, 106), (200, 400, 30)),
            Preset::Foursquare => dims(scale, (1083, 4000, 185), (220, 600, 40)),
            Preset::Gowalla => dims(scale, (718, 3500, 259), (180, 550, 45)),
        }
    }
}

fn dims(
    scale: Scale,
    paper: (usize, u32, usize),
    small: (usize, u32, usize),
) -> (usize, u32, usize) {
    match scale {
        Scale::Paper => paper,
        Scale::Small => small,
        Scale::Smoke => (48, 160, 12),
        // One shared shape for all presets: the profile exists to stress the
        // memory budget of a round, not to model a specific Table I dataset.
        // ~12 interactions/user keeps generation (~12M zipf draws) in seconds.
        Scale::Million => (1_000_000, 100_000, 12),
    }
}

/// MovieLens-100k-like dataset: 943 users, 1 682 items, ~106 ratings/user.
pub fn movielens_like(scale: Scale, seed: u64) -> Dataset {
    let (users, items, ipu) = Preset::MovieLens.dims(scale);
    SyntheticConfig::builder()
        .name(format!("MovieLens-like ({scale})"))
        .users(users)
        .items(items)
        .communities(communities_for(users))
        .interactions_per_user(ipu)
        .topic_affinity(0.8)
        .zipf_exponent(1.05)
        .seed(seed)
        .build()
        .generate()
}

/// Foursquare-NYC-like dataset: 1 083 users, ~185 check-ins/user, sequences
/// and semantic categories (catalog scaled 38 333 → 4 000 at paper scale).
pub fn foursquare_like(scale: Scale, seed: u64) -> Dataset {
    let (users, items, ipu) = Preset::Foursquare.dims(scale);
    SyntheticConfig::builder()
        .name(format!("Foursquare-like ({scale})"))
        .users(users)
        .items(items)
        .communities(communities_for(users))
        .interactions_per_user(ipu)
        .topic_affinity(0.85)
        .zipf_exponent(1.1)
        .sequences(true)
        .categories(CategoryPlan::default())
        .seed(seed)
        .build()
        .generate()
}

/// Gowalla-NYC-like dataset: 718 users, ~259 check-ins/user, sequences
/// (catalog scaled 32 924 → 3 500 at paper scale).
pub fn gowalla_like(scale: Scale, seed: u64) -> Dataset {
    let (users, items, ipu) = Preset::Gowalla.dims(scale);
    SyntheticConfig::builder()
        .name(format!("Gowalla-like ({scale})"))
        .users(users)
        .items(items)
        .communities(communities_for(users))
        .interactions_per_user(ipu)
        .topic_affinity(0.85)
        .zipf_exponent(1.1)
        .sequences(true)
        .seed(seed)
        .build()
        .generate()
}

/// Community count scaling: roughly one community of ~20 users at paper
/// scale, bounded for tiny configurations. The paper's ground truth uses
/// K = 50 member communities; with ~20-50 users per planted community and
/// topical overlap between clusters, Jaccard top-50 communities cut across
/// several planted clusters — matching the soft notion of "community of
/// interest".
fn communities_for(users: usize) -> usize {
    (users / 20).clamp(4, 48)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_roundtrips() {
        for s in [Scale::Smoke, Scale::Small, Scale::Paper, Scale::Million] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
    }

    #[test]
    fn paper_scale_matches_table_one_users() {
        // Only check the cheap dimension (user count) at paper scale; the
        // full generation is exercised at smoke scale below.
        let ml = SyntheticConfig::builder()
            .users(943)
            .items(1682)
            .communities(communities_for(943))
            .interactions_per_user(106)
            .build();
        assert_eq!(ml.num_users(), 943);
        assert_eq!(ml.num_items(), 1682);
    }

    #[test]
    fn smoke_presets_generate() {
        for p in Preset::ALL {
            let d = p.generate(Scale::Smoke, 1);
            assert_eq!(d.num_users(), 48);
            assert!(d.num_interactions() > 0, "{}", p.name());
            assert_eq!(p.has_sequences(), !d.records()[0].sequence().is_empty());
        }
    }

    #[test]
    fn foursquare_has_categories() {
        let d = foursquare_like(Scale::Smoke, 2);
        assert!(d.categories().is_some());
        assert_eq!(d.categories().unwrap().num_items(), 160);
    }

    #[test]
    fn preset_names_match_paper() {
        assert_eq!(Preset::MovieLens.name(), "MovieLens");
        assert_eq!(Preset::Foursquare.name(), "Foursquare");
        assert_eq!(Preset::Gowalla.name(), "Gowalla");
    }

    #[test]
    fn communities_scale_with_users() {
        assert_eq!(communities_for(943), 47);
        assert_eq!(communities_for(48), 4);
        assert_eq!(communities_for(10_000), 48);
    }
}
