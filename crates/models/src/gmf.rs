//! Generalized Matrix Factorization (GMF), from the Neural Collaborative
//! Filtering family [13].
//!
//! GMF scores a user/item pair as `ŷ_ui = σ(h · (p_u ⊙ q_i))` and is trained
//! on binarized implicit feedback with binary cross-entropy and negative
//! sampling, as in the paper (§V-A, §V-B).
//!
//! Flat parameter layout: `[ p_u (d) | Q (|V|·d) | h (d) ]`; the aggregatable
//! slice is everything after the user embedding.
//!
//! **Scoring works on pre-sigmoid logits.** The sigmoid is monotone, so
//! every *per-item ranking* consumer — HR@20, F1@20, normalized-rank
//! relevance — is exactly invariant to dropping it, and `exp()` dominated
//! per-item scoring cost (the "sigmoid-bound" plateau in
//! `BENCH_kernels.json`). The mean-score relevance `Ŷ(Θ, V_target)` is *not*
//! invariant (a mean does not commute with a per-item monotone transform):
//! the attack now ranks by mean logit instead of mean probability, and
//! Pers-Gossip's peer-personalization score
//! ([`Participant::evaluate_model`]) contrasts mean logits instead of mean
//! probabilities — deliberate substitutions, valid under §IV-B's "any
//! recommendation quality metric", that avoid sigmoid saturation compressing
//! late-training scores into indistinguishability.
//! The sigmoid survives where calibrated probabilities are genuinely needed:
//! the BCE training loss, the adversary-embedding gradient, and the MIA
//! proxy's entropy rule. Use [`crate::params::sigmoid`] explicitly to report
//! a calibrated score.

use crate::kernel::{dot, dot3, gemv};
use crate::params::{init_uniform, sigmoid};
use crate::participant::{Participant, RelevanceScorer, SharedModel, SharingPolicy};
use cia_data::UserId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// GMF hyper-parameters (defaults follow the original work where stated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmfHyper {
    /// SGD learning rate.
    pub lr: f32,
    /// Negative samples per positive interaction.
    pub negatives: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Uniform initialization half-range.
    pub init_scale: f32,
    /// Epochs used when fitting the adversary's fictive embedding (§IV-C)
    /// from scratch.
    pub adversary_epochs: usize,
    /// Epochs used when the fictive embedding is warm-started from the
    /// previous refresh's solution (public parameters drift slowly between
    /// refreshes, so a short polish suffices).
    pub adversary_warm_epochs: usize,
}

impl Default for GmfHyper {
    fn default() -> Self {
        GmfHyper {
            lr: 0.05,
            negatives: 4,
            weight_decay: 1e-5,
            init_scale: 0.1,
            adversary_epochs: 5,
            adversary_warm_epochs: 2,
        }
    }
}

/// Immutable description of a GMF model family: catalog size, embedding
/// dimension and hyper-parameters.
///
/// ```
/// use cia_models::{GmfSpec, GmfHyper, SharingPolicy};
/// let spec = GmfSpec::new(100, 8, GmfHyper::default());
/// assert_eq!(spec.agg_len(), 100 * 8 + 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmfSpec {
    num_items: u32,
    dim: usize,
    hyper: GmfHyper,
}

impl GmfSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `num_items == 0`, `dim == 0`, or `hyper.negatives` exceeds
    /// [`MAX_NEGATIVES`].
    pub fn new(num_items: u32, dim: usize, hyper: GmfHyper) -> Self {
        assert!(num_items > 0, "catalog must be non-empty");
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(
            hyper.negatives <= MAX_NEGATIVES,
            "at most {MAX_NEGATIVES} negative samples per positive are supported"
        );
        GmfSpec { num_items, dim, hyper }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hyper-parameters.
    pub fn hyper(&self) -> &GmfHyper {
        &self.hyper
    }

    /// Length of the aggregatable slice: `|V|·d + d`.
    pub fn agg_len(&self) -> usize {
        self.num_items as usize * self.dim + self.dim
    }

    /// Initializes a fresh aggregatable parameter vector (item embeddings
    /// plus output layer `h`).
    pub fn init_agg(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut agg = vec![0.0f32; self.agg_len()];
        init_uniform(&mut agg, self.hyper.init_scale, rng);
        // Start h at 1 so GMF degenerates to plain MF at initialization; the
        // triple product u·h·q otherwise starves plain SGD of gradient.
        let d = self.dim;
        let items = self.num_items as usize * d;
        for v in &mut agg[items..] {
            *v = 1.0;
        }
        agg
    }

    /// Builds a client for `user` with local training items `train_items`
    /// (sorted, deduplicated).
    pub fn build_client(
        &self,
        user: UserId,
        train_items: Vec<u32>,
        policy: SharingPolicy,
        seed: u64,
    ) -> GmfClient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut user_emb = vec![0.0f32; self.dim];
        init_uniform(&mut user_emb, self.hyper.init_scale, &mut rng);
        let agg = self.init_agg(&mut rng);
        let mut train_mask = vec![0u8; self.num_items as usize];
        for &j in &train_items {
            train_mask[j as usize] = 1;
        }
        GmfClient {
            spec: self.clone(),
            user,
            user_emb,
            agg,
            train_items,
            policy,
            ref_items: None,
            train_mask,
            order: Vec::new(),
            touched: Vec::new(),
            touched_mask: vec![0u8; self.num_items as usize],
        }
    }

    /// Builds a lazily materialized "shell" client for `user`: identical to
    /// [`GmfSpec::build_client`] except that the catalog-sized aggregatable
    /// buffer is never allocated — the client trains inside the borrowed
    /// workspace of [`Participant::fed_round_shared`] instead. The private
    /// user embedding comes off the same RNG stream as `build_client` draws
    /// it (before the aggregatable init there), so a shell and a dense client
    /// built from the same seed carry bit-identical private state.
    pub fn build_shell(
        &self,
        user: UserId,
        train_items: Vec<u32>,
        policy: SharingPolicy,
        seed: u64,
    ) -> GmfClient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut user_emb = vec![0.0f32; self.dim];
        init_uniform(&mut user_emb, self.hyper.init_scale, &mut rng);
        let mut train_mask = vec![0u8; self.num_items as usize];
        for &j in &train_items {
            train_mask[j as usize] = 1;
        }
        GmfClient {
            spec: self.clone(),
            user,
            user_emb,
            agg: Vec::new(),
            train_items,
            policy,
            ref_items: None,
            train_mask,
            order: Vec::new(),
            touched: Vec::new(),
            touched_mask: vec![0u8; self.num_items as usize],
        }
    }

    #[inline]
    fn item_slice<'a>(&self, agg: &'a [f32], j: u32) -> &'a [f32] {
        let d = self.dim;
        &agg[j as usize * d..(j as usize + 1) * d]
    }

    #[inline]
    fn h_slice<'a>(&self, agg: &'a [f32]) -> &'a [f32] {
        &agg[self.num_items as usize * self.dim..]
    }
}

/// Embedding dimension up to which the hoisted `w = p_u ⊙ h` product lives on
/// the stack (scoring stays allocation-free for every realistic `d`).
const W_STACK: usize = 64;

/// Upper bound on negatives per sampling group (the stack-allocated group
/// buffer size; the paper uses 4). [`GmfSpec::new`] rejects larger settings.
pub const MAX_NEGATIVES: usize = 15;

/// Runs `f` with `w = user ⊙ h` materialized once — on the stack when the
/// dimension allows — so per-item scoring is a plain [`dot`].
#[inline]
fn with_user_h<R>(user: &[f32], h: &[f32], f: impl FnOnce(&[f32]) -> R) -> R {
    let d = user.len();
    if d <= W_STACK {
        let mut buf = [0.0f32; W_STACK];
        for ((b, u), hh) in buf.iter_mut().zip(user).zip(h) {
            *b = u * hh;
        }
        f(&buf[..d])
    } else {
        let w: Vec<f32> = user.iter().zip(h).map(|(u, hh)| u * hh).collect();
        f(&w)
    }
}

impl RelevanceScorer for GmfSpec {
    fn num_items(&self) -> u32 {
        self.num_items
    }

    fn agg_len(&self) -> usize {
        GmfSpec::agg_len(self)
    }

    fn user_emb_len(&self) -> usize {
        self.dim
    }

    fn score_items(&self, user_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]) {
        let user = user_emb.expect("GMF scoring needs a user embedding");
        assert_eq!(out.len(), self.num_items as usize, "output buffer size");
        assert_eq!(agg.len(), GmfSpec::agg_len(self), "agg size");
        let d = self.dim;
        let h = self.h_slice(agg);
        // Logit z_j = (p_u ⊙ h) · q_j: w is hoisted once (stack, no
        // allocation) and every item is one chunked dot. σ is monotone, so
        // ranking and relevance means never need it (module docs).
        with_user_h(user, h, |w| {
            for (q, o) in agg[..self.num_items as usize * d].chunks_exact(d).zip(out.iter_mut()) {
                *o = dot(w, q);
            }
        });
    }

    fn score_item_range(&self, user_emb: Option<&[f32]>, agg: &[f32], start: u32, out: &mut [f32]) {
        let user = user_emb.expect("GMF scoring needs a user embedding");
        let (start, end) = (start as usize, start as usize + out.len());
        assert!(end <= self.num_items as usize, "item range exceeds catalog");
        assert_eq!(agg.len(), GmfSpec::agg_len(self), "agg size");
        let d = self.dim;
        let h = self.h_slice(agg);
        // Item embeddings are row-major by id, so the tile is one dense
        // `out.len() × d` sub-matrix: a single fused gemv against
        // w = p_u ⊙ h. Each row is the same chunked `dot` as
        // `score_items`, so the two paths agree bit for bit.
        with_user_h(user, h, |w| gemv(out, &agg[start * d..end * d], w, None, false));
    }

    fn mean_relevance(&self, user_emb: Option<&[f32]>, agg: &[f32], items: &[u32]) -> f32 {
        let user = user_emb.expect("GMF scoring needs a user embedding");
        if items.is_empty() {
            return 0.0;
        }
        let h = self.h_slice(agg);
        with_user_h(user, h, |w| {
            let mut acc = 0.0f32;
            for &j in items {
                acc += dot(w, self.item_slice(agg, j));
            }
            acc / items.len() as f32
        })
    }

    fn train_adversary_embedding(
        &self,
        agg: &[f32],
        target_items: &[u32],
        warm_start: Option<&[f32]>,
        rng: &mut StdRng,
    ) -> Option<Vec<f32>> {
        let d = self.dim;
        let h = self.h_slice(agg);
        let mut emb = vec![0.0f32; d];
        let epochs = match warm_start {
            Some(prev) => {
                emb.copy_from_slice(prev);
                self.hyper.adversary_warm_epochs
            }
            None => {
                init_uniform(&mut emb, self.hyper.init_scale, rng);
                self.hyper.adversary_epochs
            }
        };
        let lr = self.hyper.lr;
        for _ in 0..epochs {
            for &pos in target_items {
                // One positive step and `negatives` negative steps, updating
                // only the fictive embedding (item embeddings stay fixed).
                self.adversary_step(&mut emb, agg, h, pos, 1.0, lr);
                for _ in 0..self.hyper.negatives {
                    let neg = rng.gen_range(0..self.num_items);
                    if target_items.binary_search(&neg).is_err() {
                        self.adversary_step(&mut emb, agg, h, neg, 0.0, lr);
                    }
                }
            }
        }
        Some(emb)
    }
}

impl GmfSpec {
    fn adversary_step(&self, emb: &mut [f32], agg: &[f32], h: &[f32], j: u32, y: f32, lr: f32) {
        let q = self.item_slice(agg, j);
        let g = sigmoid(dot3(emb, h, q)) - y;
        for k in 0..self.dim {
            emb[k] -= lr * g * h[k] * q[k];
        }
    }
}

/// A GMF participant: one user's local model and training data.
#[derive(Debug, Clone)]
pub struct GmfClient {
    spec: GmfSpec,
    user: UserId,
    user_emb: Vec<f32>,
    agg: Vec<f32>,
    train_items: Vec<u32>,
    policy: SharingPolicy,
    /// Share-less reference item embeddings (the values received at the start
    /// of the round; Eq. 2's `e_j^t`, or `e_ju^{t-1}` in GL).
    ref_items: Option<Vec<f32>>,
    /// O(1) membership test for negative sampling (`1` = training item).
    train_mask: Vec<u8>,
    /// Scratch for the per-epoch shuffled visit order (no per-epoch alloc).
    order: Vec<u32>,
    /// Item rows modified since the last absorb/mix (sparse-aggregation
    /// vantage: untouched rows still equal the absorbed reference).
    touched: Vec<u32>,
    /// Dedup mask for `touched`.
    touched_mask: Vec<u8>,
}

impl GmfClient {
    /// The model spec this client was built from.
    pub fn spec(&self) -> &GmfSpec {
        &self.spec
    }

    /// The client's own (private) user embedding.
    pub fn user_emb(&self) -> &[f32] {
        &self.user_emb
    }

    /// Scores candidate items with the client's own model (utility
    /// evaluation). Returns pre-sigmoid logits — apply
    /// [`crate::params::sigmoid`] for calibrated probabilities; ranking
    /// metrics never need it (module docs).
    pub fn score_candidates(&self, items: &[u32]) -> Vec<f32> {
        let h = self.spec.h_slice(&self.agg);
        with_user_h(&self.user_emb, h, |w| {
            items.iter().map(|&j| dot(w, self.spec.item_slice(&self.agg, j))).collect()
        })
    }

    /// Resets the touched-row tracking (the absorbed parameters become the
    /// new sparse-update reference).
    fn clear_touched(&mut self) {
        // A paper-scale round touches ~half the catalog: one sequential
        // memset beats hundreds of scattered byte-clears into a cold mask.
        if self.touched.len() * 4 >= self.touched_mask.len() {
            self.touched_mask.fill(0);
        } else {
            for &j in &self.touched {
                self.touched_mask[j as usize] = 0;
            }
        }
        self.touched.clear();
    }

    /// One local training epoch over the shuffled item set, in sampling
    /// groups of one positive plus the configured negatives (the
    /// dimension-monomorphized body of [`Participant::train_local`]).
    fn train_epoch<const D: usize>(&mut self, rng: &mut StdRng) -> f32 {
        let d = if D == 0 { self.spec.dim } else { D };
        let lr = self.spec.hyper.lr;
        let wd = self.spec.hyper.weight_decay;
        let tau = self.policy.tau();
        let negatives = self.spec.hyper.negatives;
        let num_items = self.spec.num_items;
        // Reused scratch: shuffled visit order, taken out of `self` so the
        // group steps can borrow `self` mutably.
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend_from_slice(&self.train_items);
        order.shuffle(rng);
        // Hot state is hoisted once per epoch: one agg split, the user
        // embedding and the group-step scratch in stack buffers (a single
        // heap scratch when the dimension exceeds the stack budget), and
        // plain field borrows, so the group kernel touches no `self`
        // indirection.
        let items_len = num_items as usize * d;
        let (items, h) = self.agg.split_at_mut(items_len);
        let h = &mut h[..d];
        let mut stack = [0.0f32; 4 * W_STACK];
        let mut heap = Vec::new();
        let scratch: &mut [f32] = if d <= W_STACK {
            &mut stack
        } else {
            heap.resize(4 * d, 0.0);
            &mut heap
        };
        let (u, rest) = scratch.split_at_mut(d);
        let (w, rest) = rest.split_at_mut(d);
        let (du, rest) = rest.split_at_mut(d);
        let dh = &mut rest[..d];
        u.copy_from_slice(&self.user_emb);
        let reference = if tau > 0.0 { self.ref_items.as_deref() } else { None };
        let touched = &mut self.touched;
        let touched_mask = &mut self.touched_mask;
        let train_mask = &self.train_mask;
        let mut group = [0u32; 1 + MAX_NEGATIVES];
        let mut loss = 0.0f32;
        let mut prod = 1.0f64;
        let mut steps = 0usize;
        for &pos in &order {
            group[0] = pos;
            let mut len = 1;
            for _ in 0..negatives {
                let neg = rng.gen_range(0..num_items);
                if train_mask[neg as usize] == 0 {
                    group[len] = neg;
                    len += 1;
                }
            }
            for &j in &group[..len] {
                if touched_mask[j as usize] == 0 {
                    touched_mask[j as usize] = 1;
                    touched.push(j);
                }
            }
            group_step_kernel::<D>(
                items,
                h,
                u,
                w,
                du,
                dh,
                &group[..len],
                lr,
                wd,
                tau,
                reference,
                &mut prod,
                &mut loss,
            );
            steps += len;
        }
        self.user_emb.copy_from_slice(u);
        self.order = order;
        if steps == 0 {
            0.0
        } else {
            flush_loss(loss, prod) / steps as f32
        }
    }
}

/// One mini-batch SGD step on a sampling group: `group[0]` is the positive
/// item (label 1), the rest are sampled negatives (label 0).
///
/// All logits are evaluated against the group-start parameters and the
/// shared factors `p_u` and `h` are updated once per group — standard
/// minibatching of the per-positive sampling group. The phases are split so
/// the hot math vectorizes: `w = p_u ⊙ h` is hoisted once, the logits are a
/// batch of dots, the sigmoids run through the elementwise
/// [`crate::kernel::sigmoid_in_place`], and the BCE loss folds into a
/// running f64 *product* (`Σ −ln xᵢ = −ln Π xᵢ`) flushed through one `ln`
/// only on underflow — removing every per-step transcendental latency
/// chain, which dominated the cost of a paper-scale round. Weight decay on
/// `p_u`/`h` is scaled by the group size so the effective per-epoch decay
/// matches the per-item formulation.
///
/// `D` is the compile-time embedding dimension (0 = runtime dimension from
/// `h.len()`); `prod` carries the running BCE probability product and
/// `loss` the flushed nats ([`flush_loss`] folds the remainder).
#[allow(clippy::too_many_arguments)]
#[inline]
fn group_step_kernel<const D: usize>(
    items: &mut [f32],
    h: &mut [f32],
    u: &mut [f32],
    w: &mut [f32],
    du: &mut [f32],
    dh: &mut [f32],
    group: &[u32],
    lr: f32,
    wd: f32,
    tau: f32,
    reference: Option<&[f32]>,
    prod: &mut f64,
    loss: &mut f32,
) {
    let d = if D == 0 { h.len() } else { D };
    // Re-pinning every scratch slice to length `d` (compile-time constant on
    // the monomorphized paths) folds the bounds checks away.
    let h = &mut h[..d];
    let u = &mut u[..d];
    let w = &mut w[..d];
    let du = &mut du[..d];
    let dh = &mut dh[..d];
    for k in 0..d {
        w[k] = u[k] * h[k];
        du[k] = 0.0;
        dh[k] = 0.0;
    }
    let mut zs = [0.0f32; 1 + MAX_NEGATIVES];
    for idx in 0..group.len() {
        let j = group[idx] as usize;
        zs[idx] = dot_pinned(w, &items[j * d..][..d]);
    }
    // Padding the batch to a full 8-lane vector keeps the sigmoid loop
    // tail-free under AVX2; the padded lanes hold zeros and their outputs
    // are never read.
    let padded = group.len().next_multiple_of(8).min(zs.len());
    crate::kernel::sigmoid_in_place(&mut zs[..padded]);
    let eps = 1e-7f32;
    // Under heavy DP noise the absorbed model can carry large coordinates;
    // clamping keeps local SGD finite (the model is destroyed either way,
    // which is what the DP experiments measure).
    const CLAMP: f32 = 20.0;
    for idx in 0..group.len() {
        let j = group[idx] as usize;
        let p = zs[idx];
        let g = if idx == 0 {
            *prod *= f64::from(p + eps);
            p - 1.0
        } else {
            *prod *= f64::from(1.0 - p + eps);
            p
        };
        if *prod < 1e-280 {
            *loss += -(prod.ln() as f32);
            *prod = 1.0;
        }
        let q = &mut items[j * d..][..d];
        // The Share-less branch is hoisted out of the per-coordinate loop so
        // the common full-sharing path stays vectorizable.
        match reference {
            None => {
                for k in 0..d {
                    let qk = q[k];
                    du[k] += g * h[k] * qk;
                    dh[k] += g * u[k] * qk;
                    let dq = g * h[k] * u[k] + wd * qk;
                    q[k] = (qk - lr * dq).clamp(-CLAMP, CLAMP);
                }
            }
            Some(r) => {
                let r = &r[j * d..][..d];
                for k in 0..d {
                    let qk = q[k];
                    du[k] += g * h[k] * qk;
                    dh[k] += g * u[k] * qk;
                    let dq = g * h[k] * u[k] + wd * qk + 2.0 * tau * (qk - r[k]);
                    q[k] = (qk - lr * dq).clamp(-CLAMP, CLAMP);
                }
            }
        }
    }
    let gl = group.len() as f32;
    for k in 0..d {
        u[k] = (u[k] - lr * (du[k] + gl * wd * u[k])).clamp(-CLAMP, CLAMP);
        h[k] = (h[k] - lr * (dh[k] + gl * wd * h[k])).clamp(-CLAMP, CLAMP);
    }
}

/// [`dot`] with indexed loops so a compile-time-constant slice length fully
/// unrolls; the accumulation order matches [`dot`] exactly (same lanes, same
/// pairwise fold), so the two are bit-identical.
#[inline(always)]
fn dot_pinned(a: &[f32], b: &[f32]) -> f32 {
    use crate::kernel::LANES;
    debug_assert_eq!(a.len(), b.len());
    let d = a.len();
    let mut acc = [0.0f32; LANES];
    let chunks = d / LANES;
    for c in 0..chunks {
        for l in 0..LANES {
            acc[l] += a[c * LANES + l] * b[c * LANES + l];
        }
    }
    let fold = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    let mut sum = (fold[0] + fold[2]) + (fold[1] + fold[3]);
    for k in chunks * LANES..d {
        sum += a[k] * b[k];
    }
    sum
}

/// Folds a remaining BCE probability product into accumulated nats.
fn flush_loss(loss: f32, prod: f64) -> f32 {
    loss + -(prod.ln() as f32)
}

impl Participant for GmfClient {
    fn user(&self) -> UserId {
        self.user
    }

    fn agg_len(&self) -> usize {
        self.spec.agg_len()
    }

    fn agg(&self) -> &[f32] {
        &self.agg
    }

    fn owner_emb(&self) -> Option<&[f32]> {
        self.policy.shares_user_embedding().then_some(self.user_emb.as_slice())
    }

    fn absorb_agg(&mut self, agg: &[f32]) {
        assert_eq!(agg.len(), self.agg.len(), "agg size mismatch");
        self.agg.copy_from_slice(agg);
        self.clear_touched();
        if self.policy.tau() > 0.0 {
            let items_len = self.spec.num_items as usize * self.spec.dim;
            match &mut self.ref_items {
                Some(r) => r.copy_from_slice(&agg[..items_len]),
                slot @ None => *slot = Some(agg[..items_len].to_vec()),
            }
        }
    }

    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        if self.policy.tau() > 0.0 && self.ref_items.is_none() {
            // First round in GL: regularize towards the pre-training values.
            let items_len = self.spec.num_items as usize * self.spec.dim;
            self.ref_items = Some(self.agg[..items_len].to_vec());
        }
        // Monomorphize the hot epoch on the embedding dimension: with a
        // const `d` every per-coordinate loop unrolls and vectorizes (the
        // generic fallback keeps identical structure with a runtime bound).
        match self.spec.dim {
            8 => self.train_epoch::<8>(rng),
            16 => self.train_epoch::<16>(rng),
            _ => self.train_epoch::<0>(rng),
        }
    }

    fn mix_agg(&mut self, others: &[&[f32]]) {
        // In-place uniform mean: one read-modify-write pass over the own
        // parameters instead of materializing the mean and absorbing it.
        // Bit-identical to the default (`w·x` commutes; the default's first
        // axpy adds onto exact zeros, and `uniform_mix` preserves the
        // per-coordinate addition order).
        crate::kernel::uniform_mix(&mut self.agg, others);
        self.clear_touched();
        if self.policy.tau() > 0.0 {
            let items_len = self.spec.num_items as usize * self.spec.dim;
            match &mut self.ref_items {
                Some(r) => r.copy_from_slice(&self.agg[..items_len]),
                slot @ None => *slot = Some(self.agg[..items_len].to_vec()),
            }
        }
    }

    fn fed_round_shared(
        &mut self,
        workspace: &mut Vec<f32>,
        global: &[f32],
        epochs: usize,
        rng: &mut StdRng,
        acc: Option<(f32, &mut [f32])>,
        snapshot: Option<(u64, &mut SharedModel)>,
    ) -> f32 {
        if !self.agg.is_empty() {
            // Dense client: it owns a buffer and never reads the workspace;
            // the fused owned-buffer round trivially preserves the contract.
            let loss = self.fed_round(global, epochs, rng, acc);
            if let Some((round, slot)) = snapshot {
                self.snapshot_into(round, slot);
            }
            return loss;
        }
        assert_eq!(workspace.len(), global.len(), "workspace/global size mismatch");
        assert_eq!(workspace.len(), self.spec.agg_len(), "workspace size");
        // Swapping the workspace in is `absorb_agg(global)` without the
        // catalog-sized memcpy: the caller guarantees it is bit-identical to
        // `global`. The Share-less reference bookkeeping mirrors absorb.
        std::mem::swap(&mut self.agg, workspace);
        debug_assert!(self.touched.is_empty(), "shell client starts untouched");
        if self.policy.tau() > 0.0 {
            let items_len = self.spec.num_items as usize * self.spec.dim;
            match &mut self.ref_items {
                Some(r) => r.copy_from_slice(&global[..items_len]),
                slot @ None => *slot = Some(global[..items_len].to_vec()),
            }
        }
        let mut loss = 0.0;
        for _ in 0..epochs.max(1) {
            loss = self.train_local(rng);
        }
        if let Some((weight, acc)) = acc {
            self.accumulate_update(global, weight, acc);
        }
        if let Some((round, slot)) = snapshot {
            self.snapshot_into(round, slot);
        }
        // Repair: local training modified only the touched item rows, the
        // `h` tail and the private user embedding, so restoring those from
        // `global` leaves the workspace bit-identical to `global` again.
        let d = self.spec.dim;
        let items_len = self.spec.num_items as usize * d;
        for &j in &self.touched {
            let start = j as usize * d;
            self.agg[start..][..d].copy_from_slice(&global[start..][..d]);
        }
        self.agg[items_len..].copy_from_slice(&global[items_len..]);
        self.clear_touched();
        std::mem::swap(&mut self.agg, workspace);
        loss
    }

    fn private_state(&self) -> Vec<f32> {
        // Between sampled FedAvg rounds only the user embedding persists:
        // the aggregatable buffer and the Share-less reference are both
        // re-derived from the incoming global at the next round start.
        self.user_emb.clone()
    }

    fn restore_private_state(&mut self, state: &[f32]) {
        assert_eq!(state.len(), self.spec.dim, "GMF private state size");
        self.user_emb.copy_from_slice(state);
    }

    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel {
            owner: self.user,
            round,
            owner_emb: self.policy.shares_user_embedding().then(|| self.user_emb.clone()),
            agg: self.agg.clone(),
        }
    }

    fn snapshot_into(&self, round: u64, slot: &mut SharedModel) {
        slot.owner = self.user;
        slot.round = round;
        slot.agg.resize(self.agg.len(), 0.0);
        slot.agg.copy_from_slice(&self.agg);
        if self.policy.shares_user_embedding() {
            match &mut slot.owner_emb {
                Some(e) => {
                    e.resize(self.user_emb.len(), 0.0);
                    e.copy_from_slice(&self.user_emb);
                }
                emb @ None => *emb = Some(self.user_emb.clone()),
            }
        } else {
            slot.owner_emb = None;
        }
    }

    fn accumulate_update(&self, reference: &[f32], weight: f32, out: &mut [f32]) {
        let d = self.spec.dim;
        let items_len = self.spec.num_items as usize * d;
        assert_eq!(self.agg.len(), reference.len(), "reference length mismatch");
        assert_eq!(self.agg.len(), out.len(), "output length mismatch");
        // Local training modifies only the visited item rows and `h`;
        // untouched rows still equal the absorbed reference, so their delta
        // is exactly zero and the pass skips them. Equal-length row slices
        // keep the inner loop free of bounds checks.
        for &j in &self.touched {
            let start = j as usize * d;
            let o = &mut out[start..][..d];
            let a = &self.agg[start..][..d];
            let r = &reference[start..][..d];
            for k in 0..d {
                o[k] += weight * (a[k] - r[k]);
            }
        }
        let o = &mut out[items_len..];
        let a = &self.agg[items_len..];
        let r = &reference[items_len..];
        for k in 0..o.len() {
            o[k] += weight * (a[k] - r[k]);
        }
    }

    fn num_examples(&self) -> usize {
        self.train_items.len()
    }

    fn evaluate_model(&self, model: &SharedModel) -> f32 {
        // Contrast the received public parameters against this node's taste:
        // mean relevance of own train items minus a deterministic probe of
        // the catalog, both scored with the node's own embedding.
        let spec = &self.spec;
        let on = RelevanceScorer::mean_relevance(
            spec,
            Some(&self.user_emb),
            &model.agg,
            &self.train_items,
        );
        let stride = (spec.num_items() / 64).max(1);
        let probe: Vec<u32> = (0..spec.num_items()).step_by(stride as usize).collect();
        let off = RelevanceScorer::mean_relevance(spec, Some(&self.user_emb), &model.agg, &probe);
        on - off
    }

    fn state_vec(&self) -> Vec<f32> {
        // [ user_emb | agg | ref_flag | ref_items? ] — decoded only by
        // `restore_state` below.
        let d = self.spec.dim;
        let items_len = self.spec.num_items as usize * d;
        let mut state = Vec::with_capacity(
            d + self.agg.len() + 1 + self.ref_items.as_ref().map_or(0, Vec::len),
        );
        state.extend_from_slice(&self.user_emb);
        state.extend_from_slice(&self.agg);
        match &self.ref_items {
            Some(r) => {
                debug_assert_eq!(r.len(), items_len);
                state.push(1.0);
                state.extend_from_slice(r);
            }
            None => state.push(0.0),
        }
        state
    }

    fn restore_state(&mut self, state: &[f32]) {
        self.clear_touched();
        let d = self.spec.dim;
        let items_len = self.spec.num_items as usize * d;
        let agg_len = self.agg.len();
        assert!(state.len() > d + agg_len, "GMF state too short");
        self.user_emb.copy_from_slice(&state[..d]);
        self.agg.copy_from_slice(&state[d..d + agg_len]);
        let flag = state[d + agg_len];
        self.ref_items = if flag == 1.0 {
            let r = &state[d + agg_len + 1..];
            assert_eq!(r.len(), items_len, "GMF reference-items state size");
            Some(r.to_vec())
        } else {
            assert_eq!(state.len(), d + agg_len + 1, "GMF state size");
            None
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GmfSpec {
        GmfSpec::new(30, 4, GmfHyper { lr: 0.1, ..GmfHyper::default() })
    }

    #[test]
    fn training_reduces_loss_and_separates_items() {
        let s = spec();
        let mut c = s.build_client(UserId::new(0), vec![1, 2, 3, 4, 5], SharingPolicy::Full, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let first = c.train_local(&mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = c.train_local(&mut rng);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        // Own positives now outscore never-seen items on average.
        let pos = c.score_candidates(&[1, 2, 3, 4, 5]);
        let neg = c.score_candidates(&[20, 21, 22, 23, 24]);
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&pos) > mean(&neg) + 0.2, "pos {} neg {}", mean(&pos), mean(&neg));
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of one SGD step's implicit gradient on the
        // BCE loss, for each parameter family.
        let s = GmfSpec::new(5, 3, GmfHyper { lr: 0.0, weight_decay: 0.0, ..GmfHyper::default() });
        let c = s.build_client(UserId::new(0), vec![0], SharingPolicy::Full, 3);
        let j = 2u32;
        let y = 1.0f32;
        let d = 3usize;

        let loss_of = |user: &[f32], agg: &[f32]| -> f64 {
            let q = &agg[j as usize * d..(j as usize + 1) * d];
            let h = &agg[5 * d..];
            let mut z = 0.0f32;
            for k in 0..d {
                z += user[k] * h[k] * q[k];
            }
            let p = sigmoid(z) as f64;
            -(y as f64) * p.ln() - (1.0 - y as f64) * (1.0 - p).ln()
        };

        // Analytic gradient (as used in `step`).
        let q: Vec<f32> = c.spec.item_slice(&c.agg, j).to_vec();
        let h: Vec<f32> = c.spec.h_slice(&c.agg).to_vec();
        let u: Vec<f32> = c.user_emb.clone();
        let mut z = 0.0f32;
        for k in 0..d {
            z += u[k] * h[k] * q[k];
        }
        let g = sigmoid(z) - y;

        let eps = 1e-3f32;
        for k in 0..d {
            // du
            let mut up = u.clone();
            up[k] += eps;
            let mut um = u.clone();
            um[k] -= eps;
            let num = (loss_of(&up, &c.agg) - loss_of(&um, &c.agg)) / (2.0 * eps as f64);
            let ana = (g * h[k] * q[k]) as f64;
            assert!((num - ana).abs() < 1e-3, "du[{k}]: numeric {num} vs analytic {ana}");

            // dq
            let mut aggp = c.agg.clone();
            aggp[j as usize * d + k] += eps;
            let mut aggm = c.agg.clone();
            aggm[j as usize * d + k] -= eps;
            let num = (loss_of(&u, &aggp) - loss_of(&u, &aggm)) / (2.0 * eps as f64);
            let ana = (g * h[k] * u[k]) as f64;
            assert!((num - ana).abs() < 1e-3, "dq[{k}]: numeric {num} vs analytic {ana}");

            // dh
            let hoff = 5 * d + k;
            let mut aggp = c.agg.clone();
            aggp[hoff] += eps;
            let mut aggm = c.agg.clone();
            aggm[hoff] -= eps;
            let num = (loss_of(&u, &aggp) - loss_of(&u, &aggm)) / (2.0 * eps as f64);
            let ana = (g * u[k] * q[k]) as f64;
            assert!((num - ana).abs() < 1e-3, "dh[{k}]: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn training_supports_dimensions_beyond_the_stack_budget() {
        // d > W_STACK routes the epoch scratch through the heap fallback;
        // training must behave exactly like the small-d path (no panic,
        // loss decreases, touched tracking intact).
        let s = GmfSpec::new(40, 80, GmfHyper { lr: 0.1, ..GmfHyper::default() });
        let mut c = s.build_client(UserId::new(0), vec![1, 2, 3, 4, 5], SharingPolicy::Full, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let first = c.train_local(&mut rng);
        let mut last = first;
        for _ in 0..20 {
            last = c.train_local(&mut rng);
        }
        assert!(last.is_finite() && last < first, "loss did not decrease: {first} -> {last}");
        assert!(!c.touched.is_empty());
    }

    #[test]
    #[should_panic(expected = "negative samples")]
    fn rejects_oversized_negative_sampling() {
        let _ =
            GmfSpec::new(10, 4, GmfHyper { negatives: MAX_NEGATIVES + 1, ..GmfHyper::default() });
    }

    #[test]
    fn score_items_matches_mean_relevance() {
        let s = spec();
        let c = s.build_client(UserId::new(1), vec![0, 1], SharingPolicy::Full, 9);
        let snap = c.snapshot(0);
        let mut all = vec![0.0f32; 30];
        s.score_items(snap.owner_emb.as_deref(), &snap.agg, &mut all);
        let items = [3u32, 7, 9];
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        let mean: f32 = items.iter().map(|&i| all[i as usize]).sum::<f32>() / 3.0;
        let got = s.mean_relevance(snap.owner_emb.as_deref(), &snap.agg, &items);
        assert!((mean - got).abs() < 1e-6);
    }

    #[test]
    fn score_item_range_matches_score_items_bitwise() {
        let s = spec();
        let c = s.build_client(UserId::new(3), vec![0, 2, 5], SharingPolicy::Full, 21);
        let snap = c.snapshot(0);
        let mut all = vec![0.0f32; 30];
        s.score_items(snap.owner_emb.as_deref(), &snap.agg, &mut all);
        for (start, len) in [(0usize, 30usize), (0, 7), (4, 13), (29, 1), (11, 0)] {
            let mut tile = vec![f32::NAN; len];
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            s.score_item_range(snap.owner_emb.as_deref(), &snap.agg, start as u32, &mut tile);
            assert_eq!(
                tile.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                all[start..start + len].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tile {start}+{len} diverged from full scoring"
            );
        }
    }

    #[test]
    fn share_less_snapshot_hides_user_embedding() {
        let s = spec();
        let c =
            s.build_client(UserId::new(2), vec![0, 1], SharingPolicy::ShareLess { tau: 0.5 }, 11);
        let snap = c.snapshot(3);
        assert!(snap.owner_emb.is_none());
        assert_eq!(snap.round, 3);
        let full = s.build_client(UserId::new(2), vec![0, 1], SharingPolicy::Full, 11);
        assert!(full.snapshot(0).owner_emb.is_some());
    }

    #[test]
    fn share_less_regularizer_pulls_items_towards_reference() {
        let s = GmfSpec::new(10, 4, GmfHyper { lr: 0.05, ..GmfHyper::default() });
        let mk = |tau: f32, seed: u64| {
            let policy =
                if tau > 0.0 { SharingPolicy::ShareLess { tau } } else { SharingPolicy::Full };
            let mut c = s.build_client(UserId::new(0), vec![0, 1, 2], policy, seed);
            let reference = c.agg.clone();
            c.absorb_agg(&reference);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..10 {
                c.train_local(&mut rng);
            }
            let items_len = 10 * 4;
            let drift: f32 = c.agg[..items_len]
                .iter()
                .zip(&reference[..items_len])
                .map(|(a, b)| (a - b).abs())
                .sum();
            drift
        };
        let drift_full = mk(0.0, 2);
        let drift_reg = mk(2.0, 2);
        assert!(
            drift_reg < drift_full,
            "regularized drift {drift_reg} !< unregularized {drift_full}"
        );
    }

    #[test]
    fn adversary_embedding_prefers_target_items() {
        let s = spec();
        // Train a few users so item embeddings carry signal.
        let mut c = s.build_client(UserId::new(0), vec![1, 2, 3], SharingPolicy::Full, 4);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            c.train_local(&mut rng);
        }
        let agg = c.agg().to_vec();
        let target = vec![1u32, 2, 3];
        let emb = s.train_adversary_embedding(&agg, &target, None, &mut rng).unwrap();
        let on_target = s.mean_relevance(Some(&emb), &agg, &target);
        let off_target = s.mean_relevance(Some(&emb), &agg, &[20, 21, 22]);
        assert!(on_target > off_target, "on {on_target} !> off {off_target}");
    }

    #[test]
    fn warm_started_adversary_embedding_stays_on_target() {
        let s = spec();
        let mut c = s.build_client(UserId::new(0), vec![1, 2, 3], SharingPolicy::Full, 4);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            c.train_local(&mut rng);
        }
        let agg = c.agg().to_vec();
        let target = vec![1u32, 2, 3];
        let cold = s.train_adversary_embedding(&agg, &target, None, &mut rng).unwrap();
        // Warm-starting from the cold solution against the same parameters
        // must keep (or improve) the on/off-target separation.
        let warm = s.train_adversary_embedding(&agg, &target, Some(&cold), &mut rng).unwrap();
        let on = s.mean_relevance(Some(&warm), &agg, &target);
        let off = s.mean_relevance(Some(&warm), &agg, &[20, 21, 22]);
        assert!(on > off, "warm-started on {on} !> off {off}");
    }

    #[test]
    fn state_roundtrip_restores_everything() {
        let s = spec();
        let mut c = s.build_client(UserId::new(3), vec![1, 2, 3], SharingPolicy::Full, 6);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            c.train_local(&mut rng);
        }
        let state = c.state_vec();
        let mut fresh = s.build_client(UserId::new(3), vec![1, 2, 3], SharingPolicy::Full, 6);
        fresh.restore_state(&state);
        assert_eq!(fresh.user_emb(), c.user_emb());
        assert_eq!(fresh.agg(), c.agg());
        // Share-less clients carry reference items in the state too.
        let mut sl =
            s.build_client(UserId::new(4), vec![1, 2], SharingPolicy::ShareLess { tau: 0.5 }, 7);
        let reference = sl.agg().to_vec();
        sl.absorb_agg(&reference);
        sl.train_local(&mut rng);
        let state = sl.state_vec();
        let mut fresh =
            s.build_client(UserId::new(4), vec![1, 2], SharingPolicy::ShareLess { tau: 0.5 }, 7);
        fresh.restore_state(&state);
        assert_eq!(fresh.ref_items, sl.ref_items);
        assert_eq!(fresh.agg(), sl.agg());
    }

    #[test]
    fn absorb_agg_roundtrip() {
        let s = spec();
        let mut a = s.build_client(UserId::new(0), vec![1], SharingPolicy::Full, 1);
        let b = s.build_client(UserId::new(1), vec![2], SharingPolicy::Full, 2);
        a.absorb_agg(b.agg());
        assert_eq!(a.agg(), b.agg());
    }

    #[test]
    #[should_panic(expected = "agg size mismatch")]
    fn absorb_agg_rejects_wrong_size() {
        let s = spec();
        let mut a = s.build_client(UserId::new(0), vec![1], SharingPolicy::Full, 1);
        a.absorb_agg(&[0.0; 3]);
    }
}
