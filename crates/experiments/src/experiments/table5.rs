//! Table V — collusion in GL under the Share-less strategy.

use crate::experiments::table4::sweep;
use crate::runner::DefenseKind;
use crate::tables::Table;
use cia_data::presets::Scale;

/// Regenerates Table V.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    vec![sweep(
        scale,
        seed,
        DefenseKind::ShareLess { tau: 0.3 },
        0.99,
        format!("Table V — Collusion in GL with Share-less (GMF, MovieLens, {scale} scale)"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_share_less_colluder_sweep_completes() {
        let tables = run(Scale::Smoke, 5);
        assert_eq!(tables[0].rows.len(), 4);
        for row in &tables[0].rows {
            let aac: f64 = row[2].parse().unwrap();
            assert!((0.0..=100.0).contains(&aac));
        }
    }
}
