//! Table III — CIA on GossipRecs: Rand-Gossip and Pers-Gossip across all
//! dataset × model configurations, every adversary placement evaluated.

use crate::experiments::table2::CONFIGS;
use crate::runner::{run_recsys, ProtocolKind, RunSpec};
use crate::tables::{pct, Table};
use cia_data::presets::Scale;

/// Regenerates Table III.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        format!("Table III — CIA on GossipRecs ({scale} scale)"),
        &[
            "Gossip protocol",
            "Dataset",
            "Random bound %",
            "Model",
            "Max AAC %",
            "Best 10% AAC %",
            "Upper bound %",
        ],
    );
    for protocol in [ProtocolKind::RandGossip, ProtocolKind::PersGossip] {
        for (preset, model) in CONFIGS {
            let mut spec = RunSpec::new(preset, model, protocol, scale);
            spec.seed = seed;
            let r = run_recsys(&spec);
            t.row(vec![
                protocol.name().to_string(),
                preset.name().to_string(),
                pct(r.attack.random_bound),
                model.name().to_string(),
                pct(r.attack.max_aac),
                pct(r.attack.best10_aac),
                pct(r.attack.upper_bound.min(1.0)),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table3_has_ten_rows() {
        let tables = run(Scale::Smoke, 3);
        assert_eq!(tables[0].rows.len(), 10);
        for row in &tables[0].rows {
            let aac: f64 = row[4].parse().unwrap();
            assert!((0.0..=100.0).contains(&aac));
        }
    }
}
