//! The shared experiment runner: dataset × model × protocol × defense ×
//! attack, with scale profiles.

use cia_core::{
    AttackOutcome, CiaConfig, FlCia, GlCiaAllPlacements, GlCiaCoalition, ItemSetEvaluator,
};
use cia_data::presets::{Preset, Scale};
use cia_data::{Dataset, GroundTruth, LeaveOneOut, UserId};
use cia_defenses::{DpConfig, DpMechanism};
use cia_federated::{FedAvg, FedAvgConfig};
use cia_gossip::{GossipConfig, GossipProtocol, GossipSim};
use cia_models::{
    f1_at_k, GmfClient, GmfHyper, GmfSpec, Participant, PrmeClient, PrmeHyper, PrmeSpec,
    RankedEval, RelevanceScorer, SharingPolicy,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Which recommendation model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Generalized matrix factorization (evaluated on all three datasets).
    Gmf,
    /// Personalized ranking metric embedding (POI datasets only).
    Prme,
}

impl ModelKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gmf => "GMF",
            ModelKind::Prme => "PRME",
        }
    }
}

/// Which collaborative protocol to train over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// FedAvg federated learning.
    Fl,
    /// Rand-Gossip decentralized learning.
    RandGossip,
    /// Pers-Gossip personalized decentralized learning.
    PersGossip,
}

impl ProtocolKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Fl => "FL",
            ProtocolKind::RandGossip => "Rand-Gossip",
            ProtocolKind::PersGossip => "Pers-Gossip",
        }
    }
}

/// Which defense the participants deploy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Full model sharing, no defense.
    None,
    /// The Share-less policy (§III-D) with regularization factor τ.
    ShareLess {
        /// Item-update regularization factor.
        tau: f32,
    },
    /// Local DP-SGD (§III-E) calibrated to a target ε (δ = 1e-6, clip = 2 as
    /// in Figure 5); `None` means noiseless clipping (ε = ∞).
    Dp {
        /// Target privacy budget, or `None` for ε = ∞.
        epsilon: Option<f64>,
    },
}

impl DefenseKind {
    /// The sharing policy implied by the defense.
    pub fn policy(self) -> SharingPolicy {
        match self {
            DefenseKind::ShareLess { tau } => SharingPolicy::ShareLess { tau },
            _ => SharingPolicy::Full,
        }
    }
}

/// Scale-dependent simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleParams {
    /// FL communication rounds.
    pub fl_rounds: u64,
    /// Gossip rounds.
    pub gl_rounds: u64,
    /// FL attack-evaluation cadence.
    pub fl_eval_every: u64,
    /// Gossip attack-evaluation cadence.
    pub gl_eval_every: u64,
    /// Local epochs per FL round.
    pub local_epochs: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Community size `K` (the paper's default is 50).
    pub k: usize,
    /// Negatives sampled for ranking evaluation (the NCF protocol uses 100).
    pub eval_negatives: usize,
    /// Held-out items per user on POI datasets (for F1).
    pub poi_holdout: usize,
}

impl ScaleParams {
    /// The parameters for a given scale.
    pub fn of(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => ScaleParams {
                fl_rounds: 8,
                gl_rounds: 40,
                fl_eval_every: 2,
                gl_eval_every: 10,
                local_epochs: 2,
                dim: 8,
                k: 5,
                eval_negatives: 20,
                poi_holdout: 3,
            },
            Scale::Small => ScaleParams {
                fl_rounds: 20,
                gl_rounds: 400,
                fl_eval_every: 2,
                gl_eval_every: 40,
                local_epochs: 2,
                dim: 8,
                k: 20,
                eval_negatives: 50,
                poi_holdout: 5,
            },
            Scale::Paper => ScaleParams {
                fl_rounds: 30,
                gl_rounds: 1500,
                fl_eval_every: 3,
                gl_eval_every: 100,
                local_epochs: 2,
                dim: 8,
                k: 50,
                eval_negatives: 100,
                poi_holdout: 5,
            },
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Dataset preset.
    pub preset: Preset,
    /// Recommendation model.
    pub model: ModelKind,
    /// Collaborative protocol.
    pub protocol: ProtocolKind,
    /// Deployed defense.
    pub defense: DefenseKind,
    /// Number of adversary-controlled gossip nodes (0 or 1 = single
    /// adversary via the all-placements sweep; ≥ 2 = a colluding coalition
    /// with parameter momentum). Ignored in FL.
    pub colluders: usize,
    /// Momentum coefficient β (Eq. 4).
    pub beta: f32,
    /// Community size override (defaults to the scale's `k` when `None`).
    pub k_override: Option<usize>,
    /// Scale profile.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// A full-sharing, no-defense, single-adversary configuration.
    pub fn new(preset: Preset, model: ModelKind, protocol: ProtocolKind, scale: Scale) -> Self {
        RunSpec {
            preset,
            model,
            protocol,
            defense: DefenseKind::None,
            colluders: 0,
            beta: 0.99,
            k_override: None,
            scale,
            seed: 42,
        }
    }
}

/// Result of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Attack summary (Max AAC, Best-10%, bounds, history).
    pub attack: AttackOutcome,
    /// Recommendation utility: HR@20 for GMF, F1@20 for PRME.
    pub utility: f64,
    /// Name of the utility metric.
    pub utility_metric: &'static str,
    /// Wall-clock duration of the run.
    #[serde(skip, default)]
    pub elapsed: Duration,
}

/// Shared dataset/ground-truth setup for one (preset, scale, seed).
pub struct RecsysSetup {
    /// The generated dataset.
    pub data: Dataset,
    /// The train/test split.
    pub split: LeaveOneOut,
    /// Community size used for ground truth.
    pub k: usize,
    /// Ground-truth communities for per-user targets.
    pub truth: GroundTruth,
    /// Scale parameters in effect.
    pub params: ScaleParams,
}

impl RecsysSetup {
    /// Truth table aligned with per-user targets.
    pub fn truth_table(&self) -> Vec<Vec<UserId>> {
        (0..self.data.num_users())
            .map(|u| self.truth.community_of(UserId::new(u as u32)).to_vec())
            .collect()
    }

    /// Owner table (each per-user target excludes its donor).
    pub fn owner_table(&self) -> Vec<Option<UserId>> {
        (0..self.data.num_users()).map(|u| Some(UserId::new(u as u32))).collect()
    }
}

/// Builds the dataset, split and ground truth for a preset at a scale.
///
/// # Panics
///
/// Panics if the generated dataset cannot be split (internal invariant).
pub fn build_setup(preset: Preset, scale: Scale, k_override: Option<usize>, seed: u64) -> RecsysSetup {
    let params = ScaleParams::of(scale);
    let data = preset.generate(scale, seed);
    let holdout = if preset.has_sequences() { params.poi_holdout } else { 1 };
    let split = LeaveOneOut::with_holdout(&data, holdout, params.eval_negatives, seed ^ 0x5EED)
        .expect("presets generate splittable data");
    let k = k_override.unwrap_or(params.k).min(data.num_users().saturating_sub(2)).max(1);
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    RecsysSetup { data, split, k, truth, params }
}

/// Runs one experiment end to end and reports attack + utility.
pub fn run_recsys(spec: &RunSpec) -> RunResult {
    let start = Instant::now();
    let setup = build_setup(spec.preset, spec.scale, spec.k_override, spec.seed);
    let mut result = match spec.model {
        ModelKind::Gmf => run_gmf(spec, &setup),
        ModelKind::Prme => run_prme(spec, &setup),
    };
    result.elapsed = start.elapsed();
    result
}

fn gmf_spec(setup: &RecsysSetup) -> GmfSpec {
    GmfSpec::new(
        setup.data.num_items(),
        setup.params.dim,
        GmfHyper { lr: 0.1, ..GmfHyper::default() },
    )
}

fn prme_spec(setup: &RecsysSetup) -> PrmeSpec {
    PrmeSpec::new(
        setup.data.num_items(),
        setup.params.dim,
        PrmeHyper { lr: 0.05, ..PrmeHyper::default() },
    )
}

fn run_gmf(spec: &RunSpec, setup: &RecsysSetup) -> RunResult {
    let model_spec = gmf_spec(setup);
    let policy = spec.defense.policy();
    let clients: Vec<GmfClient> = setup
        .split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            model_spec.build_client(
                UserId::new(u as u32),
                items.clone(),
                policy,
                spec.seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();
    let eval_instances = setup.split.eval_instances().to_vec();
    let utility = move |clients: &[GmfClient]| -> f64 {
        let mut acc = RankedEval::new();
        for (c, inst) in clients.iter().zip(&eval_instances) {
            let pos = c.score_candidates(&[inst.primary()])[0];
            let negs = c.score_candidates(&inst.negatives);
            acc.push(pos, &negs, 20);
        }
        acc.hr()
    };
    run_protocol(spec, setup, model_spec, clients, utility, "HR@20")
}

fn run_prme(spec: &RunSpec, setup: &RecsysSetup) -> RunResult {
    let model_spec = prme_spec(setup);
    let policy = spec.defense.policy();
    let clients: Vec<PrmeClient> = setup
        .split
        .train_sets()
        .iter()
        .zip(setup.split.train_sequences())
        .enumerate()
        .map(|(u, (items, seq))| {
            model_spec.build_client(
                UserId::new(u as u32),
                items.clone(),
                seq.clone(),
                policy,
                spec.seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();
    let eval_instances = setup.split.eval_instances().to_vec();
    let train_sets = setup.split.train_sets().to_vec();
    let num_items = setup.data.num_items();
    let utility = move |clients: &[PrmeClient]| -> f64 {
        // F1@20: rank the full catalog minus train items, compare the top 20
        // against the held-out positives.
        let all: Vec<u32> = (0..num_items).collect();
        let mut total = 0.0;
        for ((c, inst), train) in clients.iter().zip(&eval_instances).zip(&train_sets) {
            let scores = c.score_candidates(&all);
            let mut ranked: Vec<(f32, u32)> = scores
                .into_iter()
                .zip(all.iter().copied())
                .filter(|(_, j)| train.binary_search(j).is_err())
                .collect();
            ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let top: Vec<u32> = ranked.into_iter().take(20).map(|(_, j)| j).collect();
            total += f1_at_k(&top, &inst.positives);
        }
        total / clients.len() as f64
    };
    run_protocol(spec, setup, model_spec, clients, utility, "F1@20")
}

fn run_protocol<S, P>(
    spec: &RunSpec,
    setup: &RecsysSetup,
    scorer: S,
    clients: Vec<P>,
    utility: impl Fn(&[P]) -> f64,
    utility_metric: &'static str,
) -> RunResult
where
    S: RelevanceScorer + Clone + 'static,
    P: Participant,
{
    let n = setup.data.num_users();
    let share_less = matches!(spec.defense, DefenseKind::ShareLess { .. });
    let targets = setup.split.train_sets().to_vec();
    let cia = CiaConfig {
        k: setup.k,
        beta: spec.beta,
        eval_every: match spec.protocol {
            ProtocolKind::Fl => setup.params.fl_eval_every,
            _ => setup.params.gl_eval_every,
        },
        seed: spec.seed ^ 0xC1A,
    };

    let dp = match spec.defense {
        DefenseKind::Dp { epsilon } => {
            let rounds = match spec.protocol {
                ProtocolKind::Fl => setup.params.fl_rounds,
                _ => setup.params.gl_rounds,
            };
            let mech = match epsilon {
                Some(eps) => DpMechanism::with_target_epsilon(eps, 1e-6, rounds, 1.0, 2.0),
                None => DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 0.0 }),
            };
            Some(mech)
        }
        _ => None,
    };

    match spec.protocol {
        ProtocolKind::Fl => {
            let evaluator = ItemSetEvaluator::new(scorer, targets, share_less);
            let mut attack =
                FlCia::new(cia, evaluator, n, setup.truth_table(), setup.owner_table());
            let mut sim = FedAvg::new(
                clients,
                FedAvgConfig {
                    rounds: setup.params.fl_rounds,
                    local_epochs: setup.params.local_epochs,
                    seed: spec.seed,
                    ..Default::default()
                },
            );
            if let Some(m) = dp {
                sim.set_update_transform(Box::new(m));
            }
            sim.run(&mut attack);
            sim.sync_clients_to_global();
            RunResult {
                attack: attack.outcome(),
                utility: utility(sim.clients()),
                utility_metric,
                elapsed: Duration::ZERO,
            }
        }
        ProtocolKind::RandGossip | ProtocolKind::PersGossip => {
            let protocol = match spec.protocol {
                ProtocolKind::PersGossip => GossipProtocol::Pers { exploration: 0.4 },
                _ => GossipProtocol::Rand,
            };
            let cfg = GossipConfig {
                rounds: setup.params.gl_rounds,
                protocol,
                seed: spec.seed,
                ..Default::default()
            };
            let mut sim = GossipSim::new(clients, cfg);
            if let Some(m) = dp {
                sim.set_update_transform(Box::new(m));
            }
            let outcome = if spec.colluders >= 2 {
                // A colluding coalition with paper-exact parameter momentum.
                let members: Vec<u32> =
                    (0..spec.colluders).map(|i| (i * n / spec.colluders) as u32).collect();
                let evaluator = ItemSetEvaluator::new(scorer, targets, share_less);
                let mut attack = GlCiaCoalition::new(
                    cia,
                    evaluator,
                    n,
                    &members,
                    setup.truth_table(),
                    setup.owner_table(),
                );
                sim.run(&mut attack);
                attack.outcome()
            } else {
                // Every placement at once (score-EMA; DESIGN.md §3).
                let evaluator = ItemSetEvaluator::new(scorer, targets, share_less);
                let mut attack =
                    GlCiaAllPlacements::new(cia, evaluator, n, setup.truth_table());
                sim.run(&mut attack);
                attack.outcome()
            };
            RunResult {
                attack: outcome,
                utility: utility(sim.nodes()),
                utility_metric,
                elapsed: Duration::ZERO,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fl_gmf_run() {
        let spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let r = run_recsys(&spec);
        assert!(r.attack.max_aac > r.attack.random_bound, "attack below random");
        assert!(r.utility > 0.0, "HR must be positive");
        assert_eq!(r.utility_metric, "HR@20");
    }

    #[test]
    fn smoke_gossip_prme_run() {
        let spec = RunSpec::new(
            Preset::Foursquare,
            ModelKind::Prme,
            ProtocolKind::RandGossip,
            Scale::Smoke,
        );
        let r = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&r.attack.max_aac));
        assert_eq!(r.utility_metric, "F1@20");
    }

    #[test]
    fn smoke_share_less_and_dp_run() {
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        spec.defense = DefenseKind::ShareLess { tau: 0.3 };
        let sl = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&sl.attack.max_aac));

        spec.defense = DefenseKind::Dp { epsilon: Some(10.0) };
        let dp = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&dp.attack.max_aac));
    }

    #[test]
    fn smoke_coalition_run() {
        let mut spec = RunSpec::new(
            Preset::MovieLens,
            ModelKind::Gmf,
            ProtocolKind::RandGossip,
            Scale::Smoke,
        );
        spec.colluders = 4;
        let r = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&r.attack.max_aac));
        assert!(r.attack.upper_bound > 0.0, "coalition saw nobody");
    }

    #[test]
    fn setup_tables_are_aligned() {
        let s = build_setup(Preset::MovieLens, Scale::Smoke, None, 1);
        assert_eq!(s.truth_table().len(), s.data.num_users());
        assert_eq!(s.owner_table().len(), s.data.num_users());
        assert_eq!(s.k, 5);
    }
}
