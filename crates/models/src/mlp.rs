//! A small multi-layer perceptron.
//!
//! Used twice in the paper: the MNIST universality experiment (§VIII-E, one
//! hidden layer of 100 units trained in FL) and the AIA baseline's
//! gradient classifier (§VIII-C2, five fully-connected layers with ReLU and a
//! sigmoid output). Hidden activations are ReLU; the output head is softmax
//! cross-entropy for multi-class and sigmoid binary cross-entropy when the
//! final layer has a single unit.

use crate::params::init_uniform;
use crate::participant::{Participant, SharedModel};
use cia_data::{ImageDataset, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpHyper {
    /// SGD learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size for local training.
    pub batch_size: usize,
}

impl Default for MlpHyper {
    fn default() -> Self {
        MlpHyper { lr: 0.1, weight_decay: 1e-5, batch_size: 16 }
    }
}

/// Architecture of an MLP: layer sizes `[input, hidden..., output]`.
///
/// ```
/// use cia_models::MlpSpec;
/// let spec = MlpSpec::new(vec![4, 3, 2]);
/// assert_eq!(spec.param_len(), 4 * 3 + 3 + 3 * 2 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpSpec {
    layers: Vec<usize>,
}

impl MlpSpec {
    /// Creates a spec from layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layers are given or any size is zero.
    pub fn new(layers: Vec<usize>) -> Self {
        assert!(layers.len() >= 2, "need at least input and output layers");
        assert!(layers.iter().all(|&s| s > 0), "layer sizes must be positive");
        MlpSpec { layers }
    }

    /// Layer sizes.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.layers[0]
    }

    /// Output dimensionality.
    pub fn output_len(&self) -> usize {
        *self.layers.last().expect("validated: >= 2 layers")
    }

    /// Total number of parameters (weights + biases).
    pub fn param_len(&self) -> usize {
        self.layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// He-style initialization of a fresh parameter vector.
    pub fn init_params(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_len()];
        let mut off = 0;
        for w in self.layers.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (2.0 / n_in as f32).sqrt();
            init_uniform(&mut params[off..off + n_in * n_out], scale, rng);
            off += n_in * n_out + n_out; // biases stay zero
        }
        params
    }

    /// Forward pass on `params`, returning the output logits.
    ///
    /// # Panics
    ///
    /// Panics if the slices have unexpected lengths.
    pub fn forward(&self, params: &[f32], x: &[f32]) -> Vec<f32> {
        assert_eq!(params.len(), self.param_len(), "param size");
        assert_eq!(x.len(), self.input_len(), "input size");
        let mut act = x.to_vec();
        let mut off = 0;
        let n_layers = self.layers.len() - 1;
        for (li, w) in self.layers.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let weights = &params[off..off + n_in * n_out];
            let biases = &params[off + n_in * n_out..off + n_in * n_out + n_out];
            let mut next = vec![0.0f32; n_out];
            for o in 0..n_out {
                let row = &weights[o * n_in..(o + 1) * n_in];
                let mut z = biases[o];
                for i in 0..n_in {
                    z += row[i] * act[i];
                }
                next[o] = if li + 1 < n_layers { z.max(0.0) } else { z };
            }
            act = next;
            off += n_in * n_out + n_out;
        }
        act
    }

    /// Log-softmax of logits.
    pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = logits.iter().map(|&z| (z - max).exp()).sum::<f32>().ln() + max;
        logits.iter().map(|&z| z - lse).collect()
    }
}

/// A trainable MLP: spec plus parameters.
#[derive(Debug, Clone)]
pub struct Mlp {
    spec: MlpSpec,
    params: Vec<f32>,
    hyper: MlpHyper,
}

impl Mlp {
    /// Creates a freshly initialized MLP.
    pub fn new(spec: MlpSpec, hyper: MlpHyper, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = spec.init_params(&mut rng);
        Mlp { spec, params, hyper }
    }

    /// The architecture.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access to the parameters (aggregation).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Forward pass returning logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.spec.forward(&self.params, x)
    }

    /// Predicted class (argmax of logits).
    pub fn predict_class(&self, x: &[f32]) -> usize {
        let logits = self.forward(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// Sigmoid probability for a single-output (binary) head.
    ///
    /// # Panics
    ///
    /// Panics if the output layer has more than one unit.
    pub fn prob_binary(&self, x: &[f32]) -> f32 {
        assert_eq!(self.spec.output_len(), 1, "binary head required");
        crate::params::sigmoid(self.forward(x)[0])
    }

    /// One SGD step on a mini-batch with a softmax cross-entropy head.
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or a label is out of range.
    pub fn train_classification(&mut self, xs: &[&[f32]], labels: &[usize]) -> f32 {
        assert!(!xs.is_empty() && xs.len() == labels.len(), "batch shape");
        let out = self.spec.output_len();
        assert!(labels.iter().all(|&l| l < out), "label out of range");
        self.train_batch(xs, |logits, i| {
            let logp = MlpSpec::log_softmax(logits);
            let loss = -logp[labels[i]];
            let mut delta: Vec<f32> = logp.iter().map(|&lp| lp.exp()).collect();
            delta[labels[i]] -= 1.0;
            (loss, delta)
        })
    }

    /// One SGD step on a mini-batch with a sigmoid binary cross-entropy head.
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the output layer is not a single unit.
    pub fn train_binary(&mut self, xs: &[&[f32]], targets: &[f32]) -> f32 {
        assert!(!xs.is_empty() && xs.len() == targets.len(), "batch shape");
        assert_eq!(self.spec.output_len(), 1, "binary head required");
        self.train_batch(xs, |logits, i| {
            let p = crate::params::sigmoid(logits[0]);
            let y = targets[i];
            let eps = 1e-7f32;
            let loss = -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln());
            (loss, vec![p - y])
        })
    }

    /// Shared batched backprop; `head` maps logits to (loss, dL/dlogits).
    fn train_batch(&mut self, xs: &[&[f32]], head: impl Fn(&[f32], usize) -> (f32, Vec<f32>)) -> f32 {
        let spec = self.spec.clone();
        let n_layers = spec.layers.len() - 1;
        let mut grads = vec![0.0f32; spec.param_len()];
        let mut total_loss = 0.0f32;

        for (bi, x) in xs.iter().enumerate() {
            // Forward, keeping activations per layer.
            let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
            acts.push(x.to_vec());
            let mut off = 0;
            for (li, w) in spec.layers.windows(2).enumerate() {
                let (n_in, n_out) = (w[0], w[1]);
                let weights = &self.params[off..off + n_in * n_out];
                let biases = &self.params[off + n_in * n_out..off + n_in * n_out + n_out];
                let prev = &acts[li];
                let mut next = vec![0.0f32; n_out];
                for o in 0..n_out {
                    let row = &weights[o * n_in..(o + 1) * n_in];
                    let mut z = biases[o];
                    for i in 0..n_in {
                        z += row[i] * prev[i];
                    }
                    next[o] = if li + 1 < n_layers { z.max(0.0) } else { z };
                }
                acts.push(next);
                off += n_in * n_out + n_out;
            }

            let (loss, mut delta) = head(acts.last().expect("output layer"), bi);
            total_loss += loss;

            // Backward.
            let mut offs: Vec<usize> = Vec::with_capacity(n_layers);
            let mut o = 0;
            for w in spec.layers.windows(2) {
                offs.push(o);
                o += w[0] * w[1] + w[1];
            }
            for li in (0..n_layers).rev() {
                let (n_in, n_out) = (spec.layers[li], spec.layers[li + 1]);
                let off = offs[li];
                let prev = &acts[li];
                // Accumulate dW, db.
                for o in 0..n_out {
                    let g = delta[o];
                    let wrow = &mut grads[off + o * n_in..off + (o + 1) * n_in];
                    for i in 0..n_in {
                        wrow[i] += g * prev[i];
                    }
                    grads[off + n_in * n_out + o] += g;
                }
                if li > 0 {
                    // delta_{l-1} = Wᵀ delta ⊙ relu'(a_{l-1})
                    let weights = &self.params[off..off + n_in * n_out];
                    let mut prev_delta = vec![0.0f32; n_in];
                    for o in 0..n_out {
                        let g = delta[o];
                        let row = &weights[o * n_in..(o + 1) * n_in];
                        for i in 0..n_in {
                            prev_delta[i] += row[i] * g;
                        }
                    }
                    for i in 0..n_in {
                        if acts[li][i] <= 0.0 {
                            prev_delta[i] = 0.0;
                        }
                    }
                    delta = prev_delta;
                }
            }
        }

        let scale = self.hyper.lr / xs.len() as f32;
        let wd = self.hyper.weight_decay;
        for (p, g) in self.params.iter_mut().zip(&grads) {
            *p -= scale * g + self.hyper.lr * wd * *p;
        }
        total_loss / xs.len() as f32
    }
}

/// An MNIST-style FL participant holding one-class image data (§VIII-E).
#[derive(Debug, Clone)]
pub struct MlpClient {
    model: Mlp,
    user: UserId,
    data: Arc<ImageDataset>,
    samples: Vec<usize>,
    rng_salt: u64,
}

impl MlpClient {
    /// Builds a client over `samples` (indices into `data`).
    pub fn new(
        spec: MlpSpec,
        hyper: MlpHyper,
        user: UserId,
        data: Arc<ImageDataset>,
        samples: Vec<usize>,
        seed: u64,
    ) -> Self {
        MlpClient { model: Mlp::new(spec, hyper, seed), user, data, samples, rng_salt: seed }
    }

    /// The underlying model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Classification accuracy over the given samples.
    pub fn accuracy_on(&self, samples: &[usize]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let hits = samples
            .iter()
            .filter(|&&s| self.model.predict_class(self.data.image(s)) == self.data.label(s) as usize)
            .count();
        hits as f64 / samples.len() as f64
    }
}

impl Participant for MlpClient {
    fn user(&self) -> UserId {
        self.user
    }

    fn agg_len(&self) -> usize {
        self.model.spec.param_len()
    }

    fn agg(&self) -> &[f32] {
        &self.model.params
    }

    fn absorb_agg(&mut self, agg: &[f32]) {
        assert_eq!(agg.len(), self.model.params.len(), "agg size mismatch");
        self.model.params.copy_from_slice(agg);
    }

    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        let mut order = self.samples.clone();
        order.shuffle(rng);
        let bs = self.model.hyper.batch_size.max(1);
        // Reseed deterministically per participant to decorrelate batches.
        let _ = StdRng::seed_from_u64(self.rng_salt);
        let mut loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(bs) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&s| self.data.image(s)).collect();
            let labels: Vec<usize> = chunk.iter().map(|&s| self.data.label(s) as usize).collect();
            loss += self.model.train_classification(&xs, &labels);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            loss / batches as f32
        }
    }

    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel {
            owner: self.user,
            round,
            owner_emb: None,
            agg: self.model.params.clone(),
        }
    }

    fn num_examples(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::ImageGenConfig;

    #[test]
    fn param_len_counts_weights_and_biases() {
        let spec = MlpSpec::new(vec![784, 100, 10]);
        assert_eq!(spec.param_len(), 784 * 100 + 100 + 100 * 10 + 10);
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = MlpSpec::log_softmax(&[1.0, 2.0, 3.0]);
        let total: f32 = lp.iter().map(|&v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(lp.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn learns_xor() {
        // XOR requires the hidden layer — a solid end-to-end backprop check.
        let spec = MlpSpec::new(vec![2, 8, 1]);
        let mut mlp = Mlp::new(spec, MlpHyper { lr: 0.5, weight_decay: 0.0, batch_size: 4 }, 3);
        let xs: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut last = f32::MAX;
        for _ in 0..2000 {
            last = mlp.train_binary(&refs, &ys);
        }
        assert!(last < 0.1, "xor loss stuck at {last}");
        for (x, &y) in xs.iter().zip(&ys) {
            let p = mlp.prob_binary(x);
            assert_eq!(p > 0.5, y > 0.5, "xor({x:?}) = {p}");
        }
    }

    #[test]
    fn classification_gradient_check() {
        let spec = MlpSpec::new(vec![3, 4, 2]);
        let mut mlp = Mlp::new(spec.clone(), MlpHyper { lr: 0.0, weight_decay: 0.0, batch_size: 1 }, 5);
        let x = [0.3f32, -0.2, 0.9];
        let label = 1usize;

        let loss_of = |params: &[f32]| -> f64 {
            let logits = spec.forward(params, &x);
            -(MlpSpec::log_softmax(&logits)[label]) as f64
        };

        // Analytic gradient via a training step with lr encoded in params diff:
        // run with tiny lr and recover grad = (before - after) / lr.
        let before = mlp.params().to_vec();
        mlp.hyper.lr = 1e-4;
        mlp.train_classification(&[&x], &[label]);
        let after = mlp.params().to_vec();

        let eps = 1e-2f32;
        // Spot-check a handful of parameters.
        for &pi in &[0usize, 5, 11, spec.param_len() - 1] {
            let ana = (before[pi] - after[pi]) as f64 / 1e-4;
            let mut pp = before.clone();
            pp[pi] += eps;
            let mut pm = before.clone();
            pm[pi] -= eps;
            let num = (loss_of(&pp) - loss_of(&pm)) / (2.0 * eps as f64);
            assert!(
                (num - ana).abs() < 2e-2,
                "param {pi}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn mlp_client_trains_on_one_class() {
        let data = Arc::new(ImageDataset::generate(&ImageGenConfig {
            samples_per_class: 6,
            noise_std: 0.2,
            seed: 9,
        }));
        let samples = data.indices_of_class(3);
        let spec = MlpSpec::new(vec![cia_data::IMAGE_DIM, 32, 10]);
        let mut client = MlpClient::new(
            spec,
            MlpHyper::default(),
            UserId::new(0),
            Arc::clone(&data),
            samples.clone(),
            1,
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            client.train_local(&mut rng);
        }
        // After local-only training on class 3, it should classify its own
        // samples as class 3.
        assert!(client.accuracy_on(&samples) > 0.9);
        let snap = client.snapshot(1);
        assert!(snap.owner_emb.is_none());
        assert_eq!(snap.agg.len(), client.agg_len());
    }
}
