//! Table I — summary of datasets.

use crate::tables::Table;
use cia_data::presets::{Preset, Scale};

/// Regenerates Table I for the synthetic presets at `scale`.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        format!("Table I — Summary of datasets ({scale} scale)"),
        &["Dataset", "Users", "Items", "Interactions", "Mean/user", "Density"],
    );
    for preset in Preset::ALL {
        let stats = preset.generate(scale, seed).stats();
        t.row(vec![
            stats.name,
            stats.users.to_string(),
            stats.items.to_string(),
            stats.interactions.to_string(),
            format!("{:.1}", stats.mean_per_user),
            format!("{:.4}", stats.density),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_rows() {
        let tables = run(Scale::Smoke, 1);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        assert!(tables[0].rows[0][0].contains("MovieLens"));
    }
}
