//! Suite-level guarantees: byte-identical determinism of the JSONL stream,
//! and checkpoint/resume landing on exactly the metrics of an uninterrupted
//! run — for both protocol families.

use cia_data::presets::Scale;
use cia_scenarios::runner::{run_scenario, run_suite, validate_jsonl, RunOptions};
use cia_scenarios::{builtin_suite, ScenarioOutcome};
use std::path::PathBuf;

fn run_builtin(seed: u64) -> (Vec<ScenarioOutcome>, Vec<u8>) {
    let suite = builtin_suite(Scale::Smoke, seed);
    let mut buf = Vec::new();
    let outcomes = run_suite(&suite, &RunOptions::default(), &mut buf).unwrap();
    (outcomes, buf)
}

#[test]
fn same_spec_and_seed_is_byte_identical() {
    let (outcomes_a, bytes_a) = run_builtin(42);
    let (_, bytes_b) = run_builtin(42);
    assert_eq!(bytes_a, bytes_b, "two runs of the same suite diverged");
    assert!(outcomes_a.iter().all(|o| o.completed));
    // A different seed produces a different stream (the suite actually
    // depends on its seed, so the identity above is not vacuous).
    let (_, bytes_c) = run_builtin(43);
    assert_ne!(bytes_a, bytes_c);
    // And the stream is schema-valid.
    validate_jsonl(&String::from_utf8(bytes_a).unwrap()).unwrap();
}

/// Temp directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cia-scenarios-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn resume_matches_uninterrupted(
    suite: cia_scenarios::SuiteSpec,
    scenario_index: usize,
    stop_after: u64,
    every: u64,
    tag: &str,
) {
    let spec = suite.expanded().unwrap()[scenario_index].clone();
    resume_spec_matches_uninterrupted(&spec, stop_after, every, tag);
}

fn resume_spec_matches_uninterrupted(
    spec: &cia_scenarios::ScenarioSpec,
    stop_after: u64,
    every: u64,
    tag: &str,
) {
    let spec = spec.clone();

    // Uninterrupted reference run.
    let mut straight_out = Vec::new();
    let straight = run_scenario(&spec, "t", &RunOptions::default(), &mut straight_out).unwrap();

    // Killed run: checkpoints every `every` rounds, stops mid-flight…
    let dir = TempDir::new(tag);
    let ckpt = RunOptions {
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_every: every,
        ..RunOptions::default()
    };
    let mut partial_out = Vec::new();
    let killed = run_scenario(
        &spec,
        "t",
        &RunOptions { stop_after_rounds: Some(stop_after), ..ckpt.clone() },
        &mut partial_out,
    )
    .unwrap();
    assert!(!killed.completed);
    assert_eq!(killed.rounds_done, stop_after);

    // …and resumes to completion.
    let mut resumed_out = Vec::new();
    let resumed =
        run_scenario(&spec, "t", &RunOptions { resume: true, ..ckpt }, &mut resumed_out).unwrap();
    assert!(resumed.completed);

    // The resumed run must land on exactly the uninterrupted metrics.
    assert_eq!(resumed.attack.max_aac, straight.attack.max_aac, "max AAC diverged");
    assert_eq!(resumed.attack.best10_aac, straight.attack.best10_aac);
    assert_eq!(resumed.attack.max_round, straight.attack.max_round);
    assert_eq!(resumed.attack.history, straight.attack.history, "history diverged");
    assert_eq!(resumed.utility, straight.utility, "utility diverged");

    // The concatenated record stream equals the uninterrupted one.
    let mut stitched = partial_out;
    stitched.extend_from_slice(&resumed_out);
    assert_eq!(stitched, straight_out, "stitched JSONL diverged");

    // Completion replaced the checkpoint with a completion marker…
    let entries: Vec<String> = std::fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        entries.iter().all(|e| e.ends_with(".done")) && entries.len() == 1,
        "expected only a completion marker, found {entries:?}"
    );

    // …so resuming the finished suite again skips it without re-emitting.
    let mut extra_out = Vec::new();
    let skipped = run_scenario(
        &spec,
        "t",
        &RunOptions { checkpoint_dir: Some(dir.0.clone()), resume: true, ..RunOptions::default() },
        &mut extra_out,
    )
    .unwrap();
    assert!(skipped.skipped, "completed scenario was re-run on resume");
    assert!(extra_out.is_empty(), "skip emitted duplicate records");
}

#[test]
fn fl_run_with_churn_resumes_exactly() {
    // churn-20pct: FL with churn + stragglers, killed at round 4 of 8.
    resume_matches_uninterrupted(builtin_suite(Scale::Smoke, 42), 1, 4, 2, "fl-churn");
}

#[test]
fn gossip_sybil_run_resumes_exactly() {
    // colluding-sybils: Rand-Gossip coalition, killed at round 20 of 40.
    resume_matches_uninterrupted(builtin_suite(Scale::Smoke, 42), 2, 20, 10, "gl-sybil");
}

#[test]
fn dp_gossip_with_delta_encoded_inboxes_resumes_exactly() {
    // Clip-only DP gossip under churn: senders carry `prev_sent` references
    // and offline receivers accumulate undelivered inbox models, so the
    // mid-run checkpoint exercises the v4 sparse delta encoding. The kill
    // and resume must land on exactly the uninterrupted metrics and stream —
    // proving the deltas expand bit-exactly.
    use cia_data::presets::Preset;
    use cia_scenarios::{DefenseKind, ModelKind, ProtocolKind, ScenarioSpec};
    let mut spec = ScenarioSpec::new(
        Preset::MovieLens,
        ModelKind::Gmf,
        ProtocolKind::RandGossip,
        Scale::Smoke,
    );
    spec.name = "gl-dp-delta-inboxes".to_string();
    spec.defense = DefenseKind::Dp { epsilon: None };
    spec.colluders = 3;
    spec.dynamics.leave_prob = 0.3;
    spec.dynamics.join_prob = 0.4;
    resume_spec_matches_uninterrupted(&spec, 20, 10, "gl-dp-delta");
}

#[test]
fn sweep_expanded_scenario_resumes_exactly() {
    // participation-0.5, a scenario that only exists after sweep expansion:
    // killed at round 4 of 8, resumed, must land on the uninterrupted
    // metrics.
    resume_matches_uninterrupted(
        cia_scenarios::participation_sweep_suite(Scale::Smoke, 42),
        2,
        4,
        2,
        "sweep-participation",
    );
}

#[test]
fn adaptive_run_killed_at_the_relocation_boundary_resumes_exactly() {
    // placement-degree, killed at round 10 — exactly the end of the warm-up
    // window, before the relocation fires. The resumed process must replay
    // the identical relocation from the checkpointed traffic counters and
    // warm-up delivery log.
    resume_matches_uninterrupted(
        cia_scenarios::adaptive_sybils_suite(Scale::Smoke, 42),
        1,
        10,
        5,
        "adaptive-boundary",
    );
}

#[test]
fn adaptive_run_killed_after_the_relocation_resumes_exactly() {
    // placement-greedy, killed at round 20 — the relocation happened in the
    // first segment; the resume must re-apply the relocated membership to
    // the attack engine and the dynamics sybil table.
    resume_matches_uninterrupted(
        cia_scenarios::adaptive_sybils_suite(Scale::Smoke, 42),
        2,
        20,
        10,
        "adaptive-post",
    );
}

#[test]
fn evented_and_lockstep_streams_are_byte_identical() {
    // The event-driven runtime is the default; the legacy fused loops stay
    // behind `lockstep: true`. Both must produce the same JSONL stream for
    // the full builtin suite (FL + gossip + coalition scenarios) — the
    // compatibility guarantee the whole port rests on.
    let (_, evented) = run_builtin(42);
    let suite = builtin_suite(Scale::Smoke, 42);
    let mut lockstep = Vec::new();
    let opts = RunOptions { lockstep: true, ..RunOptions::default() };
    let outcomes = run_suite(&suite, &opts, &mut lockstep).unwrap();
    assert!(outcomes.iter().all(|o| o.completed));
    assert_eq!(evented, lockstep, "evented and lockstep streams diverged");
}

#[test]
fn interleaved_delivery_seeds_reproduce_the_transcript() {
    // Permuting same-virtual-time deliveries must be unobservable: every
    // reorderable mailbox in the protocol ports is sorted on a canonical key
    // before a float is touched. (The 256-case sweeps live in the gossip /
    // federated crates' proptests; this pins the property end-to-end through
    // the runner and JSONL layer.)
    let (_, reference) = run_builtin(42);
    for delivery_seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
        let suite = builtin_suite(Scale::Smoke, 42);
        let mut buf = Vec::new();
        let opts = RunOptions { delivery_seed: Some(delivery_seed), ..RunOptions::default() };
        run_suite(&suite, &opts, &mut buf).unwrap();
        assert_eq!(buf, reference, "delivery seed {delivery_seed:#x} changed the stream");
    }
}

#[test]
fn gossip_checkpoint_carries_the_live_event_queue() {
    // Gossip refresh timers straddle every round boundary, so a mid-run
    // checkpoint must serialize in-flight scheduler events — and the resume
    // that re-installs them must land on the uninterrupted stream. Kill at
    // an off-cadence round (checkpoint_every does not divide it) to force
    // the stop-time checkpoint path.
    use cia_scenarios::checkpoint::{Checkpoint, ProtocolState};
    let suite = builtin_suite(Scale::Smoke, 42);
    let spec = suite.expanded().unwrap()[2].clone(); // colluding-sybils, 40 rounds

    let mut straight_out = Vec::new();
    run_scenario(&spec, "t", &RunOptions::default(), &mut straight_out).unwrap();

    let dir = TempDir::new("gl-live-queue");
    let ckpt = RunOptions {
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_every: 4,
        ..RunOptions::default()
    };
    let mut partial_out = Vec::new();
    run_scenario(
        &spec,
        "t",
        &RunOptions { stop_after_rounds: Some(7), ..ckpt.clone() },
        &mut partial_out,
    )
    .unwrap();

    let ckpt_file = std::fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .expect("killed run left a checkpoint");
    let saved = Checkpoint::load(&ckpt_file, spec.fingerprint()).unwrap();
    let ProtocolState::Gl(state) = &saved.protocol else { panic!("expected gossip state") };
    assert!(!state.pending.is_empty(), "checkpoint lost the in-flight events");
    assert!(
        state.pending.iter().any(|e| e.timer),
        "expected at least one pending refresh timer across the cut"
    );

    let mut resumed_out = Vec::new();
    let resumed =
        run_scenario(&spec, "t", &RunOptions { resume: true, ..ckpt }, &mut resumed_out).unwrap();
    assert!(resumed.completed);
    let mut stitched = partial_out;
    stitched.extend_from_slice(&resumed_out);
    assert_eq!(stitched, straight_out, "resume across the live queue diverged");
}

#[test]
fn parallel_and_serial_streams_are_byte_identical() {
    // The round hot path fans out over CIA_THREADS workers (client training,
    // gossip aggregation, relevance scoring, utility evaluation). Per-client
    // RNG streams are salted by id and every reduction folds in index order,
    // so the JSONL stream must be byte-identical for any thread count.
    //
    // Other tests in this binary may run concurrently and see the variable
    // flip — harmless, because thread count never changes results (exactly
    // the property under test).
    let run_with = |threads: &str| -> Vec<u8> {
        std::env::set_var("CIA_THREADS", threads);
        let suite = builtin_suite(Scale::Smoke, 42);
        let mut buf = Vec::new();
        let outcomes = run_suite(&suite, &RunOptions::default(), &mut buf).unwrap();
        assert!(outcomes.iter().all(|o| o.completed));
        buf
    };
    let serial = run_with("1");
    let parallel = run_with("4");
    std::env::remove_var("CIA_THREADS");
    assert_eq!(serial, parallel, "thread count changed the JSONL stream");
    validate_jsonl(&String::from_utf8(serial).unwrap()).unwrap();
}

#[test]
fn kill_and_resume_under_parallel_execution_matches_serial() {
    // A churn-FL run killed mid-flight and resumed with CIA_THREADS=4 must
    // land on exactly the metrics of an uninterrupted serial run (the
    // resume_matches_uninterrupted harness runs its reference serially
    // first, then the killed/resumed legs under the parallel setting).
    std::env::set_var("CIA_THREADS", "4");
    resume_matches_uninterrupted(builtin_suite(Scale::Smoke, 42), 1, 4, 2, "parallel-resume");
    std::env::remove_var("CIA_THREADS");
}

#[test]
fn legacy_truncated_hash_checkpoints_migrate_on_resume() {
    // Checkpoint files used to truncate the name hash to 32 bits; a resume
    // must accept (rename) files written under the old naming instead of
    // silently starting from scratch.
    let suite = builtin_suite(Scale::Smoke, 42);
    let spec = suite.expanded().unwrap()[1].clone();

    let mut straight_out = Vec::new();
    let straight = run_scenario(&spec, "t", &RunOptions::default(), &mut straight_out).unwrap();

    let dir = TempDir::new("legacy-names");
    let ckpt = RunOptions {
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_every: 2,
        ..RunOptions::default()
    };
    let mut partial_out = Vec::new();
    run_scenario(
        &spec,
        "t",
        &RunOptions { stop_after_rounds: Some(4), ..ckpt.clone() },
        &mut partial_out,
    )
    .unwrap();

    // Rewrite the produced checkpoint to the legacy name: the stem ends in
    // the 16-hex-digit hash; the old format kept only the low 32 bits (the
    // trailing 8 digits).
    let entries: Vec<std::path::PathBuf> =
        std::fs::read_dir(&dir.0).unwrap().map(|e| e.unwrap().path()).collect();
    assert_eq!(entries.len(), 1);
    let current = &entries[0];
    let stem = current.file_stem().unwrap().to_string_lossy().into_owned();
    let (prefix, hash16) = stem.rsplit_once('-').unwrap();
    assert_eq!(hash16.len(), 16, "checkpoint names carry the full 64-bit hash");
    let legacy = dir.0.join(format!("{prefix}-{}.ckpt", &hash16[8..]));
    std::fs::rename(current, &legacy).unwrap();

    // The resume must pick the legacy file up and complete identically.
    let mut resumed_out = Vec::new();
    let resumed =
        run_scenario(&spec, "t", &RunOptions { resume: true, ..ckpt }, &mut resumed_out).unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.attack.history, straight.attack.history);
    let mut stitched = partial_out;
    stitched.extend_from_slice(&resumed_out);
    assert_eq!(stitched, straight_out, "stitched JSONL diverged after migration");
}

#[test]
fn resume_refuses_a_different_spec() {
    let suite = builtin_suite(Scale::Smoke, 42);
    let spec = suite.expanded().unwrap()[0].clone();
    let dir = TempDir::new("fingerprint");
    let opts = RunOptions {
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_every: 2,
        stop_after_rounds: Some(4),
        ..RunOptions::default()
    };
    run_scenario(&spec, "t", &opts, &mut Vec::new()).unwrap();

    let mut tampered = spec.clone();
    tampered.seed = 7;
    let err = run_scenario(
        &tampered,
        "t",
        &RunOptions { checkpoint_dir: Some(dir.0.clone()), resume: true, ..RunOptions::default() },
        &mut Vec::new(),
    )
    .unwrap_err();
    assert!(err.contains("fingerprint"), "unexpected error: {err}");
}
