//! Jaccard similarity and the paper's community ground truth (Eq. 5).
//!
//! For a target item set `V_target`, the *true community* `C` is the set of
//! `K` users whose training item sets have the highest Jaccard index with
//! `V_target`. The owner of the target set (when the target is a user's own
//! train set) is excluded — its Jaccard with itself is trivially 1.

use crate::parallel::par_map;
use crate::UserId;
use serde::{Deserialize, Serialize};

/// Jaccard index `|a ∩ b| / |a ∪ b|` of two **sorted, deduplicated** slices.
///
/// Returns 0 when both sets are empty.
///
/// ```
/// use cia_data::jaccard_index;
/// assert_eq!(jaccard_index(&[1, 2, 3], &[2, 3, 4]), 0.5);
/// assert_eq!(jaccard_index(&[], &[]), 0.0);
/// ```
#[must_use]
pub fn jaccard_index(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input must be sorted unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input must be sorted unique");
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Returns the `k` users (among `candidates`) whose item sets are most similar
/// to `target`, ties broken by smaller user id (deterministic).
///
/// `candidates` provides `(user, sorted item set)` pairs.
#[must_use]
pub fn top_k_similar<'a>(
    target: &[u32],
    candidates: impl Iterator<Item = (UserId, &'a [u32])>,
    k: usize,
) -> Vec<UserId> {
    let mut scored: Vec<(f64, UserId)> =
        candidates.map(|(u, items)| (jaccard_index(target, items), u)).collect();
    // Descending similarity; ascending id on ties.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).expect("jaccard is finite").then_with(|| a.1.cmp(&b.1))
    });
    scored.into_iter().take(k).map(|(_, u)| u).collect()
}

/// Ground-truth communities for every possible adversary target
/// (the paper runs one experiment per user, using that user's train set as
/// `V_target`; see §V-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    k: usize,
    /// `communities[u]` = the true community when user `u`'s train set is the
    /// target (owner excluded), sorted by descending similarity.
    communities: Vec<Vec<UserId>>,
}

impl GroundTruth {
    /// Computes ground truth for all per-user targets from the **training**
    /// item sets.
    ///
    /// `train_sets[u]` must be sorted and deduplicated. The owner `u` is
    /// excluded from its own community.
    ///
    /// Implementation: instead of O(N²) pairwise sorted-merge intersections,
    /// an inverted item → users index is built once; each owner then
    /// accumulates `|owner ∩ v|` for every co-interacting user `v` by walking
    /// the postings of its own items (total work `Σ_item |postings(item)|²`
    /// spread over owners, parallelized with [`par_map`]). The Jaccard value
    /// is derived from the intersection count with the exact float expression
    /// [`jaccard_index`] uses, and candidates are ranked with the same
    /// comparator, so results — including the smaller-id tie-break — are
    /// identical to [`GroundTruth::from_train_sets_naive`], which the
    /// property tests use as the oracle.
    pub fn from_train_sets(train_sets: &[Vec<u32>], k: usize) -> Self {
        let n = train_sets.len();
        let num_items =
            train_sets.iter().filter_map(|s| s.last()).max().map_or(0, |&m| m as usize + 1);
        let total_interactions: usize = train_sets.iter().map(Vec::len).sum();
        if num_items > total_interactions.saturating_mul(8) + 1024 {
            // Sparse/hashed item ids: a dense postings table sized by the max
            // id would dwarf the data. The pairwise merge is the right tool.
            return Self::from_train_sets_naive(train_sets, k);
        }
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); num_items];
        for (u, set) in train_sets.iter().enumerate() {
            debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "train sets must be sorted unique");
            for &item in set {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                postings[item as usize].push(u as u32);
            }
        }
        let communities = par_map(n, |owner| {
            let own = &train_sets[owner];
            let mut inter = vec![0u32; n];
            for &item in own {
                for &v in &postings[item as usize] {
                    inter[v as usize] += 1;
                }
            }
            let mut scored: Vec<(f64, UserId)> = (0..n)
                .filter(|&v| v != owner)
                .map(|v| {
                    let i = inter[v] as usize;
                    let union = own.len() + train_sets[v].len() - i;
                    let j = if union == 0 { 0.0 } else { i as f64 / union as f64 };
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    (j, UserId::new(v as u32))
                })
                .collect();
            // Same ordering as `top_k_similar`: descending similarity,
            // ascending id on ties.
            scored.sort_by(|a, b| {
                b.0.partial_cmp(&a.0).expect("jaccard is finite").then_with(|| a.1.cmp(&b.1))
            });
            scored.into_iter().take(k).map(|(_, u)| u).collect()
        });
        GroundTruth { k, communities }
    }

    /// The straightforward O(N²·|set|) pairwise-merge version of
    /// [`GroundTruth::from_train_sets`]. Kept as the property-test oracle the
    /// inverted-index path is checked against.
    pub fn from_train_sets_naive(train_sets: &[Vec<u32>], k: usize) -> Self {
        let communities = (0..train_sets.len())
            .map(|owner| {
                top_k_similar(
                    &train_sets[owner],
                    train_sets
                        .iter()
                        .enumerate()
                        .filter(|&(u, _)| u != owner)
                        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                        .map(|(u, items)| (UserId::new(u as u32), items.as_slice())),
                    k,
                )
            })
            .collect();
        GroundTruth { k, communities }
    }

    /// Computes ground truth for a single, attacker-crafted target set.
    ///
    /// No owner exclusion applies — every user is a candidate.
    pub fn for_target(target: &[u32], train_sets: &[Vec<u32>], k: usize) -> Vec<UserId> {
        top_k_similar(
            target,
            train_sets
                .iter()
                .enumerate()
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                .map(|(u, items)| (UserId::new(u as u32), items.as_slice())),
            k,
        )
    }

    /// Community size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of per-user targets.
    pub fn num_targets(&self) -> usize {
        self.communities.len()
    }

    /// The true community when `owner`'s train set is the target.
    pub fn community_of(&self, owner: UserId) -> &[UserId] {
        &self.communities[owner.index()]
    }

    /// Accuracy of a predicted community `predicted` against the truth for
    /// `owner` (Eq. 6): `|Ĉ ∩ C| / K`.
    pub fn accuracy(&self, owner: UserId, predicted: &[UserId]) -> f64 {
        let truth = self.community_of(owner);
        let hits = predicted.iter().filter(|u| truth.contains(u)).count();
        hits as f64 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard_index(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard_index(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard_index(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_index(&[], &[1]), 0.0);
    }

    #[test]
    fn top_k_orders_by_similarity_then_id() {
        let sets: Vec<Vec<u32>> = vec![
            vec![1, 2, 3], // identical to target
            vec![1, 2],    // 2/3
            vec![1, 2],    // 2/3 (tie with user 1 -> id order)
            vec![9],       // 0
        ];
        let got = top_k_similar(
            &[1, 2, 3],
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            sets.iter().enumerate().map(|(u, s)| (UserId::new(u as u32), s.as_slice())),
            3,
        );
        assert_eq!(got, vec![UserId::new(0), UserId::new(1), UserId::new(2)]);
    }

    #[test]
    fn ground_truth_excludes_owner() {
        let sets = vec![vec![1, 2, 3], vec![1, 2, 3], vec![7, 8]];
        let gt = GroundTruth::from_train_sets(&sets, 1);
        assert_eq!(gt.community_of(UserId::new(0)), &[UserId::new(1)]);
        assert_eq!(gt.community_of(UserId::new(1)), &[UserId::new(0)]);
    }

    #[test]
    fn accuracy_counts_overlap() {
        let sets = vec![vec![1, 2], vec![1, 2], vec![1, 3], vec![9]];
        let gt = GroundTruth::from_train_sets(&sets, 2);
        // Truth for user 0 is {1, 2}.
        let acc = gt.accuracy(UserId::new(0), &[UserId::new(1), UserId::new(3)]);
        assert!((acc - 0.5).abs() < 1e-12);
        let acc = gt.accuracy(UserId::new(0), &[UserId::new(1), UserId::new(2)]);
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_item_ids_fall_back_to_naive_and_agree() {
        // Max id ≫ total interactions: the dense postings table would be
        // absurd, so the guard routes to the pairwise merge.
        let sets = vec![vec![7, 4_000_000_000], vec![7, 9], vec![4_000_000_000]];
        let gt = GroundTruth::from_train_sets(&sets, 2);
        let naive = GroundTruth::from_train_sets_naive(&sets, 2);
        for u in 0..3 {
            assert_eq!(gt.community_of(UserId::new(u)), naive.community_of(UserId::new(u)));
        }
    }

    #[test]
    fn for_target_includes_everyone() {
        let sets = vec![vec![1, 2], vec![5, 6]];
        let got = GroundTruth::for_target(&[1, 2], &sets, 1);
        assert_eq!(got, vec![UserId::new(0)]);
    }
}
