//! Flat parameter-vector algebra.
//!
//! Every linear operation the system needs — FedAvg aggregation, gossip
//! averaging, the attack's momentum (Eq. 4), DP-SGD clipping and noising,
//! update computation — is expressed over flat `f32` slices, so one
//! property-tested code path serves every model.

use crate::kernel;
use rand::rngs::StdRng;
use rand::Rng;

/// `y ← y + a · x` (BLAS `axpy`), backed by [`crate::kernel::axpy`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    kernel::axpy(y, a, x);
}

/// `y ← a · y`.
pub fn scale(y: &mut [f32], a: f32) {
    kernel::scale_in_place(y, a);
}

/// Exponential moving average, the attack's Eq. 4:
/// `v ← β·v + (1−β)·θ`, backed by [`crate::kernel::ema`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn ema(v: &mut [f32], beta: f32, theta: &[f32]) {
    kernel::ema(v, beta, theta);
}

/// Euclidean norm of `x` (f64 accumulation via [`crate::kernel::sq_norm`]).
#[must_use]
pub fn l2_norm(x: &[f32]) -> f32 {
    kernel::sq_norm(x).sqrt() as f32
}

/// Scales `x` in place so that its L2 norm is at most `c` (DP-SGD clipping).
/// Returns the factor applied (1.0 when no clipping was needed).
///
/// # Panics
///
/// Panics if `c` is not positive.
pub fn clip_l2(x: &mut [f32], c: f32) -> f32 {
    kernel::clip_l2(x, c)
}

/// `out ← mean of rows`, weighted by `weights` (which are normalized
/// internally). Used by FedAvg and gossip aggregation.
///
/// # Panics
///
/// Panics if `rows` is empty, lengths mismatch, or all weights are zero.
pub fn weighted_mean(out: &mut [f32], rows: &[&[f32]], weights: &[f32]) {
    assert!(!rows.is_empty(), "weighted_mean needs at least one row");
    assert_eq!(rows.len(), weights.len(), "one weight per row");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    out.fill(0.0);
    for (row, &w) in rows.iter().zip(weights) {
        axpy(out, w / total, row);
    }
}

/// Adds i.i.d. Gaussian noise of standard deviation `std` to `x`
/// (Box–Muller on top of `rand`, see `DESIGN.md` §5).
pub fn add_gaussian_noise(x: &mut [f32], std: f32, rng: &mut StdRng) {
    if std == 0.0 {
        return;
    }
    for v in x.iter_mut() {
        *v += gaussian(rng) * std;
    }
}

/// One standard normal draw (Box–Muller).
pub fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Uniform initialization in `[-scale, scale]`, the classic embedding init.
pub fn init_uniform(out: &mut [f32], scale: f32, rng: &mut StdRng) {
    for v in out.iter_mut() {
        *v = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
    }
}

/// Numerically stable logistic sigmoid, backed by [`crate::kernel::fast_exp`].
///
/// `fast_exp` saturates at `2^±126` instead of overflowing, so the single
/// expression is stable over the whole real line — no sign branch needed —
/// and costs a fraction of a libm `expf` (this sits inside every SGD step).
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + kernel::fast_exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn axpy_adds_scaled() {
        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 2.0, &[10.0, 20.0]);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_length_mismatch_panics() {
        axpy(&mut [0.0], 1.0, &[1.0, 2.0]);
    }

    #[test]
    fn ema_interpolates() {
        let mut v = vec![0.0, 1.0];
        ema(&mut v, 0.9, &[1.0, 0.0]);
        assert!((v[0] - 0.1).abs() < 1e-6);
        assert!((v[1] - 0.9).abs() < 1e-6);
        // beta = 0 replaces entirely.
        ema(&mut v, 0.0, &[5.0, 5.0]);
        assert_eq!(v, vec![5.0, 5.0]);
    }

    #[test]
    fn clip_l2_caps_norm() {
        let mut x = vec![3.0, 4.0]; // norm 5
        let f = clip_l2(&mut x, 2.5);
        assert!((f - 0.5).abs() < 1e-6);
        assert!((l2_norm(&x) - 2.5).abs() < 1e-5);
        // Already small: untouched.
        let mut y = vec![0.1, 0.1];
        assert_eq!(clip_l2(&mut y, 10.0), 1.0);
        assert_eq!(y, vec![0.1, 0.1]);
    }

    #[test]
    fn weighted_mean_normalizes() {
        let mut out = vec![0.0; 2];
        weighted_mean(&mut out, &[&[2.0, 0.0], &[0.0, 4.0]], &[1.0, 3.0]);
        assert!((out[0] - 0.5).abs() < 1e-6);
        assert!((out[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let g = gaussian(&mut rng) as f64;
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn noise_changes_values_with_expected_magnitude() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = vec![0.0f32; 10_000];
        add_gaussian_noise(&mut x, 0.5, &mut rng);
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        let emp_std = (x.iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / 10_000.0).sqrt();
        assert!((emp_std - 0.5).abs() < 0.02, "std {emp_std}");
        // Zero std is a no-op.
        let mut y = vec![1.0f32; 4];
        add_gaussian_noise(&mut y, 0.0, &mut rng);
        assert_eq!(y, vec![1.0; 4]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        for x in [-3.0f32, -0.5, 0.7, 4.2] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn init_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = vec![0.0f32; 1000];
        init_uniform(&mut x, 0.1, &mut rng);
        assert!(x.iter().all(|v| v.abs() <= 0.1));
        assert!(x.iter().any(|v| v.abs() > 0.01));
    }
}
