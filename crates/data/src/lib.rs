//! Datasets and synthetic workload generators for the Community Inference
//! Attack (CIA) reproduction.
//!
//! The paper evaluates CIA on three implicit-feedback datasets (MovieLens-100k,
//! Foursquare-NYC, Gowalla-NYC). Those datasets are not redistributable here,
//! so this crate provides *community-structured synthetic generators* whose
//! presets match the user counts and per-user interaction densities of the
//! paper's Table I (see [`presets`]). Planted communities of interest give the
//! attack a measurable signal, and the ground truth is computed exactly as in
//! the paper (Jaccard top-K, Eq. 5 — see [`jaccard`]).
//!
//! # Example
//!
//! ```
//! use cia_data::{SyntheticConfig, presets};
//!
//! // A small community-structured dataset.
//! let data = SyntheticConfig::builder()
//!     .users(60)
//!     .items(200)
//!     .communities(6)
//!     .interactions_per_user(15)
//!     .seed(7)
//!     .build()
//!     .generate();
//! assert_eq!(data.num_users(), 60);
//!
//! // The paper's MovieLens-100k shape, scaled down for a quick run.
//! let ml = presets::movielens_like(presets::Scale::Smoke, 42);
//! assert!(ml.num_users() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod categories;
mod error;
mod ids;
mod images;
mod interactions;
mod jaccard;
pub mod parallel;
pub mod presets;
mod split;
mod synthetic;
mod zipf;

pub use categories::{CategoryMap, CategoryPlan, HealthPlanting, CATEGORY_NAMES, HEALTH_CATEGORY};
pub use error::DataError;
pub use ids::{ItemId, UserId};
pub use images::{ImageDataset, ImageGenConfig, IMAGE_DIM, NUM_CLASSES};
pub use interactions::{Dataset, DatasetStats, UserRecord};
pub use jaccard::{jaccard_index, top_k_similar, GroundTruth};
pub use split::{sample_negatives, EvalInstance, LeaveOneOut};
pub use synthetic::{SyntheticConfig, SyntheticConfigBuilder};
pub use zipf::Zipf;
