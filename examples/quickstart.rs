//! Quickstart: train a federated GMF recommender on a community-structured
//! dataset and watch the server-side Community Inference Attack recover the
//! communities round by round.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use community_inference::prelude::*;

fn main() {
    let users = 120;
    let k = 10;

    println!("Generating a community-structured dataset ({users} users, 8 communities)...");
    let data = SyntheticConfig::builder()
        .users(users)
        .items(400)
        .communities(8)
        .interactions_per_user(25)
        .seed(1)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, 50, 1).expect("dataset is splittable");
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);

    println!("Building {users} federated GMF clients...");
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();

    // The adversary: the federated server itself, targeting every user's
    // taste profile at once (the paper's evaluation protocol).
    let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    let mut attack = FlCia::new(
        CiaConfig { k, beta: 0.99, eval_every: 2, seed: 0 },
        evaluator,
        users,
        truths,
        owners,
    );

    println!("Running 20 FedAvg rounds with the attack observing...\n");
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig { rounds: 20, local_epochs: 2, seed: 7, ..Default::default() },
    );
    sim.run(&mut attack);

    let outcome = attack.outcome();
    println!("round | average attack accuracy");
    for p in &outcome.history {
        let bar = "#".repeat((p.aac * 40.0) as usize);
        println!("{:>5} | {:>5.1}% {bar}", p.round, p.aac * 100.0);
    }
    println!();
    println!("Max AAC        : {:.1}% (round {})", outcome.max_aac * 100.0, outcome.max_round);
    println!("Best 10% AAC   : {:.1}%", outcome.best10_aac * 100.0);
    println!("Random guessing: {:.1}%", outcome.random_bound * 100.0);
    println!("The attack is {:.1}x better than random guessing.", outcome.advantage_over_random());
}
