//! Property tests for the evented gossip port — the two guarantees the
//! scheduler redesign rests on:
//!
//! 1. *Interleaving invariance*: any seed for
//!    [`DeliveryPolicy::Interleaved`] reproduces the lockstep transcript
//!    byte for byte (every reorderable mailbox is sorted on a canonical key
//!    before a float is touched).
//! 2. *Kill/resume across a live queue*: exporting state at an arbitrary
//!    round cut — where per-node refresh timers are always still in flight —
//!    and restoring into a fresh simulation replays the uninterrupted run
//!    exactly.

use cia_data::UserId;
use cia_gossip::{
    Checkpointable, DeliveryPolicy, GossipConfig, GossipObserver, GossipProtocol, GossipRoundStats,
    GossipSim,
};
use cia_models::{Participant, SharedModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// A deterministic toy participant: params drift towards a per-community
/// fixed point during "training" with a small RNG perturbation, so any
/// divergence in RNG stream order between the lockstep and evented paths
/// shows up in the parameters.
struct TestNode {
    user: UserId,
    params: Vec<f32>,
    target: Vec<f32>,
}

impl TestNode {
    fn new(user: u32, community: usize) -> Self {
        let mut target = vec![0.0f32; 8];
        target[community % 8] = 1.0;
        TestNode { user: UserId::new(user), params: vec![0.0; 8], target }
    }
}

impl Participant for TestNode {
    fn user(&self) -> UserId {
        self.user
    }
    fn agg_len(&self) -> usize {
        8
    }
    fn agg(&self) -> &[f32] {
        &self.params
    }
    fn absorb_agg(&mut self, agg: &[f32]) {
        self.params.copy_from_slice(agg);
    }
    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        let mut dist = 0.0f32;
        for (p, t) in self.params.iter_mut().zip(&self.target) {
            *p += 0.5 * (t - *p) + rng.gen_range(-0.01f32..0.01);
            dist += (t - *p) * (t - *p);
        }
        dist
    }
    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel { owner: self.user, round, owner_emb: None, agg: self.params.clone() }
    }
    fn num_examples(&self) -> usize {
        1 + self.user.raw() as usize % 3
    }
    fn evaluate_model(&self, model: &SharedModel) -> f32 {
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        -model.agg.iter().zip(&self.target).map(|(a, t)| (a - t) * (a - t)).sum::<f32>()
    }
}

fn sim(n: usize, cfg: GossipConfig) -> GossipSim<TestNode> {
    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
    let nodes = (0..n).map(|u| TestNode::new(u as u32, u % 4)).collect();
    GossipSim::new(nodes, cfg)
}

/// Observer taping every observable event.
#[derive(Default, Debug, PartialEq)]
struct Tape {
    deliveries: Vec<(u64, u32, u32)>,
    stats: Vec<GossipRoundStats>,
}

impl GossipObserver for Tape {
    fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
        self.deliveries.push((round, receiver.raw(), model.owner.raw()));
    }
    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        self.stats.push(stats.clone());
    }
}

/// Every observable byte of a finished simulation.
fn observables(
    s: &GossipSim<TestNode>,
) -> (Vec<Vec<f32>>, Vec<Vec<u32>>, cia_gossip::TrafficCounters) {
    let params = s.nodes().iter().map(|c| c.params.clone()).collect();
    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
    let views = (0..s.nodes().len() as u32).map(|u| s.view_of(u).to_vec()).collect();
    (params, views, s.traffic().clone())
}

#[allow(clippy::too_many_arguments)]
fn config(rounds: u64, wake: f64, refresh: f64, pers: bool, seed: u64) -> GossipConfig {
    GossipConfig {
        rounds,
        wake_fraction: wake,
        view_refresh_rate: refresh,
        protocol: if pers {
            GossipProtocol::Pers { exploration: 0.4 }
        } else {
            GossipProtocol::Rand
        },
        seed,
        ..Default::default()
    }
}

proptest! {
    #[test]
    fn any_interleaving_seed_replays_the_lockstep_transcript(
        n in 6usize..16,
        rounds in 2u64..6,
        wake in 0.3f64..1.0,
        refresh in 0.1f64..1.0,
        pers in any::<bool>(),
        seed in 0u64..(1 << 40),
        interleave in any::<u64>(),
    ) {
        let cfg = config(rounds, wake, refresh, pers, seed);
        let mut lockstep = sim(n, cfg);
        let mut lock_tape = Tape::default();
        for _ in 0..rounds {
            lockstep.step(&mut lock_tape);
        }
        let mut evented = sim(n, cfg);
        let mut ev_tape = Tape::default();
        for _ in 0..rounds {
            evented.step_evented(&mut ev_tape, DeliveryPolicy::Interleaved { seed: interleave });
        }
        prop_assert_eq!(&ev_tape, &lock_tape);
        prop_assert_eq!(observables(&evented), observables(&lockstep));
    }

    #[test]
    fn kill_resume_across_a_live_event_queue_replays_exactly(
        n in 6usize..16,
        rounds in 3u64..8,
        cut in 1u64..7,
        wake in 0.3f64..1.0,
        refresh in 0.1f64..1.0,
        pers in any::<bool>(),
        seed in 0u64..(1 << 40),
    ) {
        prop_assume!(cut < rounds);
        let cfg = config(rounds, wake, refresh, pers, seed);
        let mut straight = sim(n, cfg);
        let mut straight_tape = Tape::default();
        for _ in 0..rounds {
            straight.step_evented(&mut straight_tape, DeliveryPolicy::Lockstep);
        }

        let mut first = sim(n, cfg);
        let mut tape = Tape::default();
        for _ in 0..cut {
            first.step_evented(&mut tape, DeliveryPolicy::Lockstep);
        }
        let state = first.export_state();
        // The cut always catches a live queue: every node keeps a refresh
        // timer in flight, so resume genuinely crosses pending events.
        prop_assert!(!state.pending.is_empty(), "event queue empty at round {}", cut);
        let params: Vec<Vec<f32>> = first.nodes().iter().map(Participant::state_vec).collect();
        drop(first);

        let mut resumed = sim(n, cfg);
        resumed.restore_state(state);
        for (node, p) in resumed.nodes_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in cut..rounds {
            resumed.step_evented(&mut tape, DeliveryPolicy::Lockstep);
        }
        prop_assert_eq!(&tape, &straight_tape, "stitched event tape diverged at cut {}", cut);
        prop_assert_eq!(observables(&resumed), observables(&straight));
    }
}
