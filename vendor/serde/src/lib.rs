//! Vendored, dependency-free stand-in for the subset of `serde` this
//! workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to document
//! which types are wire-shaped — nothing actually serializes (there is no
//! `serde_json` in the build environment). The traits are therefore empty
//! markers with blanket implementations, and the derive macros are accepted
//! (including `#[serde(...)]` helper attributes) but expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized. Blanket-implemented; real
/// serialization is out of scope for this offline build.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized. Blanket-implemented.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
