//! **community-inference** — a reproduction of *Inferring Communities of
//! Interest in Collaborative Learning-based Recommender Systems* (ICDCS
//! 2025).
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! * [`data`] — datasets, synthetic community-structured generators, splits;
//! * [`models`] — GMF, PRME, the MLP, flat parameter algebra;
//! * [`defenses`] — DP-SGD with RDP accounting, the Share-less policy;
//! * [`federated`] — the FedAvg simulation with adversary observer hooks;
//! * [`gossip`] — Rand-Gossip and Pers-Gossip over dynamic P-regular graphs;
//! * [`attack`] — the Community Inference Attack and the MIA/AIA proxies;
//! * [`scenarios`] — the declarative scenario engine: spec-driven suites
//!   with participant dynamics (churn, stragglers, sybils) and resumable
//!   runs (`cargo run --release -p cia-scenarios --bin scenario -- run`);
//! * [`experiments`] — runners regenerating every table and figure.
//!
//! # Quickstart
//!
//! Run the bundled examples:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example health_community
//! cargo run --release --example gossip_colluders
//! cargo run --release --example defense_tradeoff
//! cargo run --release --example mnist_universality
//! ```
//!
//! or regenerate a paper artifact:
//!
//! ```text
//! cargo run --release -p cia-experiments --bin repro -- table2 --scale small
//! ```
//!
//! # Minimal attack in code
//!
//! ```
//! use community_inference::prelude::*;
//!
//! // 1. A community-structured dataset and its ground truth.
//! let data = SyntheticConfig::builder()
//!     .users(24).items(100).communities(4).interactions_per_user(10)
//!     .seed(7).build().generate();
//! let split = LeaveOneOut::new(&data, 20, 7).unwrap();
//! let truth = GroundTruth::from_train_sets(split.train_sets(), 4);
//!
//! // 2. Federated clients.
//! let spec = GmfSpec::new(100, 8, GmfHyper::default());
//! let clients: Vec<_> = split.train_sets().iter().enumerate()
//!     .map(|(u, items)| spec.build_client(
//!         UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64))
//!     .collect();
//!
//! // 3. The server-side adversary.
//! let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
//! let truths: Vec<_> = (0..24).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
//! let owners: Vec<_> = (0..24).map(|u| Some(UserId::new(u))).collect();
//! let mut attack = FlCia::new(
//!     CiaConfig { k: 4, beta: 0.99, eval_every: 2, seed: 0 },
//!     evaluator, 24, truths, owners);
//!
//! // 4. Train and attack.
//! let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 4, ..Default::default() });
//! sim.run(&mut attack);
//! let outcome = attack.outcome();
//! assert!(outcome.max_aac >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cia_core as attack;
pub use cia_data as data;
pub use cia_defenses as defenses;
pub use cia_experiments as experiments;
pub use cia_federated as federated;
pub use cia_gossip as gossip;
pub use cia_models as models;
pub use cia_scenarios as scenarios;

/// One-stop imports for the common attack workflow.
pub mod prelude {
    pub use cia_core::{
        AiaCommunityAttack, AiaConfig, AttackOutcome, CiaConfig, FlCia, GlCiaAllPlacements,
        GlCiaCoalition, ItemSetEvaluator, MiaCommunityAttack, MiaConfig, RelevanceEvaluator,
    };
    pub use cia_data::presets::{Preset, Scale};
    pub use cia_data::{GroundTruth, ItemId, LeaveOneOut, SyntheticConfig, UserId};
    pub use cia_defenses::{DpConfig, DpMechanism, RdpAccountant};
    pub use cia_federated::{FedAvg, FedAvgConfig, RoundObserver};
    pub use cia_gossip::{GossipConfig, GossipProtocol, GossipSim};
    pub use cia_models::{
        GmfHyper, GmfSpec, Participant, PrmeHyper, PrmeSpec, RelevanceScorer, SharedModel,
        SharingPolicy,
    };
}
