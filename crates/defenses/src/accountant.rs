//! Rényi differential privacy (RDP) accounting for the Gaussian mechanism.
//!
//! The paper applies *local* DP-SGD: each participant's shared update is a
//! Gaussian mechanism with sensitivity `C` (the clipping threshold) and noise
//! standard deviation `ι·C`, composed over the training rounds. The RDP of
//! one such release at order `α` is `α / (2ι²)`; RDP composes additively and
//! converts to `(ε, δ)`-DP via `ε = min_α [ RDP(α) + ln(1/δ) / (α − 1) ]`.
//!
//! When participation is subsampled (rate `q < 1`) we use the classic
//! moments-accountant approximation `RDP(α) ≈ q²·α / ι²` (Abadi et al.),
//! valid for small `q` and `ι ≥ 1`; the paper's FL setting contacts all users
//! per round, so the exact `q = 1` path is the one exercised by the
//! experiments.

use serde::{Deserialize, Serialize};

/// Accounts the privacy budget of `rounds` composed (subsampled) Gaussian
/// mechanism releases with a given noise multiplier.
///
/// ```
/// use cia_defenses::RdpAccountant;
/// let acc = RdpAccountant::new(2.0, 100, 1.0);
/// let eps = acc.epsilon(1e-6);
/// assert!(eps > 0.0 && eps.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdpAccountant {
    noise_multiplier: f64,
    rounds: u64,
    sampling_rate: f64,
}

impl RdpAccountant {
    /// Creates an accountant.
    ///
    /// # Panics
    ///
    /// Panics if `noise_multiplier <= 0`, `rounds == 0`, or
    /// `sampling_rate ∉ (0, 1]`.
    pub fn new(noise_multiplier: f64, rounds: u64, sampling_rate: f64) -> Self {
        assert!(noise_multiplier > 0.0, "noise multiplier must be positive");
        assert!(rounds > 0, "must account at least one round");
        assert!(sampling_rate > 0.0 && sampling_rate <= 1.0, "sampling rate must be in (0, 1]");
        RdpAccountant { noise_multiplier, rounds, sampling_rate }
    }

    /// The noise multiplier ι.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// RDP at order `α > 1` of the composed mechanism.
    pub fn rdp(&self, alpha: f64) -> f64 {
        assert!(alpha > 1.0, "RDP orders must exceed 1");
        let s2 = self.noise_multiplier * self.noise_multiplier;
        let per_round = if self.sampling_rate >= 1.0 {
            alpha / (2.0 * s2)
        } else {
            // Moments-accountant approximation for the subsampled Gaussian.
            self.sampling_rate * self.sampling_rate * alpha / s2
        };
        per_round * self.rounds as f64
    }

    /// Converts to `(ε, δ)`-DP by minimizing over a grid of RDP orders.
    ///
    /// # Panics
    ///
    /// Panics if `delta ∉ (0, 1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let log_inv_delta = (1.0 / delta).ln();
        let mut best = f64::INFINITY;
        let mut alpha = 1.05f64;
        while alpha <= 4096.0 {
            let eps = self.rdp(alpha) + log_inv_delta / (alpha - 1.0);
            if eps < best {
                best = eps;
            }
            alpha *= 1.05;
        }
        best
    }

    /// Finds the noise multiplier achieving `target_epsilon` at `delta` for
    /// the given rounds and sampling rate (binary search; ε is monotone
    /// decreasing in ι).
    ///
    /// # Panics
    ///
    /// Panics if `target_epsilon <= 0` or `delta ∉ (0, 1)`.
    pub fn calibrate_noise(
        target_epsilon: f64,
        delta: f64,
        rounds: u64,
        sampling_rate: f64,
    ) -> f64 {
        assert!(target_epsilon > 0.0, "target epsilon must be positive");
        let eps_of = |sigma: f64| RdpAccountant::new(sigma, rounds, sampling_rate).epsilon(delta);
        let mut lo = 1e-3f64;
        let mut hi = 1e-3f64;
        // Grow hi until the budget is met.
        while eps_of(hi) > target_epsilon {
            hi *= 2.0;
            assert!(hi < 1e9, "cannot reach target epsilon {target_epsilon}");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if eps_of(mid) > target_epsilon {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_close_to_gaussian_closed_form() {
        // For q = 1: ε* = T/(2ι²) + sqrt(2 T ln(1/δ))/ι at the optimal α.
        let (sigma, rounds, delta) = (2.0f64, 50u64, 1e-6f64);
        let acc = RdpAccountant::new(sigma, rounds, 1.0);
        let closed = rounds as f64 / (2.0 * sigma * sigma)
            + (2.0 * rounds as f64 * (1.0 / delta).ln()).sqrt() / sigma;
        let got = acc.epsilon(delta);
        assert!((got - closed).abs() / closed < 0.02, "grid {got} vs closed-form {closed}");
    }

    #[test]
    fn more_noise_means_less_epsilon() {
        let e1 = RdpAccountant::new(1.0, 100, 1.0).epsilon(1e-6);
        let e2 = RdpAccountant::new(2.0, 100, 1.0).epsilon(1e-6);
        let e4 = RdpAccountant::new(4.0, 100, 1.0).epsilon(1e-6);
        assert!(e1 > e2 && e2 > e4, "{e1} > {e2} > {e4}");
    }

    #[test]
    fn more_rounds_means_more_epsilon() {
        let e10 = RdpAccountant::new(2.0, 10, 1.0).epsilon(1e-6);
        let e100 = RdpAccountant::new(2.0, 100, 1.0).epsilon(1e-6);
        assert!(e100 > e10);
    }

    #[test]
    fn subsampling_reduces_epsilon() {
        let full = RdpAccountant::new(2.0, 100, 1.0).epsilon(1e-6);
        let sub = RdpAccountant::new(2.0, 100, 0.1).epsilon(1e-6);
        assert!(sub < full);
    }

    #[test]
    fn calibration_roundtrips() {
        for &target in &[1.0f64, 10.0, 100.0, 1000.0] {
            let sigma = RdpAccountant::calibrate_noise(target, 1e-6, 60, 1.0);
            let got = RdpAccountant::new(sigma, 60, 1.0).epsilon(1e-6);
            assert!(
                got <= target && got > target * 0.95,
                "target {target}: sigma {sigma} gives {got}"
            );
        }
    }

    #[test]
    fn calibrated_noise_decreases_with_budget() {
        let tight = RdpAccountant::calibrate_noise(1.0, 1e-6, 60, 1.0);
        let loose = RdpAccountant::calibrate_noise(100.0, 1e-6, 60, 1.0);
        assert!(tight > loose, "tight {tight} !> loose {loose}");
    }

    #[test]
    #[should_panic(expected = "noise multiplier must be positive")]
    fn rejects_zero_noise() {
        let _ = RdpAccountant::new(0.0, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_bad_sampling_rate() {
        let _ = RdpAccountant::new(1.0, 10, 1.5);
    }
}
