//! Recommendation models and the participant abstraction shared by the
//! collaborative-learning protocols.
//!
//! The paper evaluates two classical recommenders (§V-B):
//!
//! * **GMF** — generalized matrix factorization ([`GmfSpec`]), scoring
//!   `ŷ_ui = σ(h · (p_u ⊙ q_i))`, trained with binary cross-entropy and
//!   negative sampling;
//! * **PRME** — personalized ranking metric embedding ([`PrmeSpec`]), scoring
//!   by (negative) distance in two metric embedding spaces, trained with a
//!   pairwise ranking loss over check-in successor pairs.
//!
//! A small [`MlpSpec`] multi-layer perceptron supports the MNIST universality
//! experiment (§VIII-E) and the AIA gradient classifier (§VIII-C2).
//!
//! All models expose their state as a *flat `f32` parameter vector*, split
//! into an aggregatable public part (item embeddings, output layers) and the
//! owner's private user embedding. Aggregation, momentum (the attack's
//! Eq. 4), DP clipping/noising and the Share-less policy are all linear
//! algebra over these vectors — see [`params`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gmf;
pub mod kernel;
mod metrics;
mod mlp;
pub mod params;
mod participant;
mod prme;
mod store;

/// Data-parallel helpers, re-exported from `cia-data` (they moved there so
/// the similarity ground truth can parallelize without a dependency cycle).
pub use cia_data::parallel;

pub use gmf::{GmfClient, GmfHyper, GmfSpec};
pub use metrics::{f1_at_k, hit_ratio, ndcg, rank_of_primary, RankedEval};
pub use mlp::{Mlp, MlpClient, MlpHyper, MlpScratch, MlpSpec};
pub use participant::{Participant, RelevanceScorer, SharedModel, SharingPolicy, UpdateTransform};
pub use prme::{PrmeClient, PrmeHyper, PrmeSpec};
pub use store::{ClientFactory, ClientStore};
