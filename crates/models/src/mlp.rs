//! A small multi-layer perceptron.
//!
//! Used twice in the paper: the MNIST universality experiment (§VIII-E, one
//! hidden layer of 100 units trained in FL) and the AIA baseline's
//! gradient classifier (§VIII-C2, five fully-connected layers with ReLU and a
//! sigmoid output). Hidden activations are ReLU; the output head is softmax
//! cross-entropy for multi-class and sigmoid binary cross-entropy when the
//! final layer has a single unit.

use crate::kernel;
use crate::params::init_uniform;
use crate::participant::{Participant, SharedModel};
use cia_data::{ImageDataset, UserId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpHyper {
    /// SGD learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size for local training.
    pub batch_size: usize,
}

impl Default for MlpHyper {
    fn default() -> Self {
        MlpHyper { lr: 0.1, weight_decay: 1e-5, batch_size: 16 }
    }
}

/// Architecture of an MLP: layer sizes `[input, hidden..., output]`.
///
/// ```
/// use cia_models::MlpSpec;
/// let spec = MlpSpec::new(vec![4, 3, 2]);
/// assert_eq!(spec.param_len(), 4 * 3 + 3 + 3 * 2 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpSpec {
    layers: Vec<usize>,
}

impl MlpSpec {
    /// Creates a spec from layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layers are given or any size is zero.
    pub fn new(layers: Vec<usize>) -> Self {
        assert!(layers.len() >= 2, "need at least input and output layers");
        assert!(layers.iter().all(|&s| s > 0), "layer sizes must be positive");
        MlpSpec { layers }
    }

    /// Layer sizes.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.layers[0]
    }

    /// Output dimensionality.
    pub fn output_len(&self) -> usize {
        *self.layers.last().expect("validated: >= 2 layers")
    }

    /// Total number of parameters (weights + biases).
    pub fn param_len(&self) -> usize {
        self.layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// He-style initialization of a fresh parameter vector.
    pub fn init_params(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_len()];
        let mut off = 0;
        for w in self.layers.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (2.0 / n_in as f32).sqrt();
            init_uniform(&mut params[off..off + n_in * n_out], scale, rng);
            off += n_in * n_out + n_out; // biases stay zero
        }
        params
    }

    /// Forward pass on `params`, returning the output logits.
    ///
    /// Allocation-sensitive callers should hold an [`MlpScratch`] and use
    /// [`MlpSpec::forward_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the slices have unexpected lengths.
    pub fn forward(&self, params: &[f32], x: &[f32]) -> Vec<f32> {
        let mut scratch = MlpScratch::default();
        self.forward_into(params, x, &mut scratch).to_vec()
    }

    /// Forward pass into reusable buffers: every layer runs as one fused
    /// [`kernel::gemv`] (ReLU on hidden layers), activations land in
    /// `scratch`, and the returned slice borrows the output layer. No
    /// allocation after the scratch has warmed up to this spec's shape.
    ///
    /// # Panics
    ///
    /// Panics if the slices have unexpected lengths.
    pub fn forward_into<'s>(
        &self,
        params: &[f32],
        x: &[f32],
        scratch: &'s mut MlpScratch,
    ) -> &'s [f32] {
        assert_eq!(params.len(), self.param_len(), "param size");
        assert_eq!(x.len(), self.input_len(), "input size");
        scratch.ensure(self);
        let n_layers = self.layers.len() - 1;
        scratch.acts[..x.len()].copy_from_slice(x);
        for li in 0..n_layers {
            let (n_in, n_out) = (self.layers[li], self.layers[li + 1]);
            let off = scratch.param_off[li];
            let weights = &params[off..off + n_in * n_out];
            let biases = &params[off + n_in * n_out..off + n_in * n_out + n_out];
            // Consecutive layers occupy disjoint ranges of the flat
            // activation buffer.
            let (prev_part, next_part) = scratch.acts.split_at_mut(scratch.act_off[li + 1]);
            let prev = &prev_part[scratch.act_off[li]..];
            let next = &mut next_part[..n_out];
            kernel::gemv(next, weights, prev, Some(biases), li + 1 < n_layers);
        }
        let out_off = scratch.act_off[n_layers];
        &scratch.acts[out_off..out_off + self.output_len()]
    }

    /// Max-shifted log-sum-exp of logits (the normalizer of softmax).
    #[must_use]
    pub fn log_sum_exp(logits: &[f32]) -> f32 {
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        logits.iter().map(|&z| (z - max).exp()).sum::<f32>().ln() + max
    }

    /// Log-softmax of logits.
    pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
        let lse = Self::log_sum_exp(logits);
        logits.iter().map(|&z| z - lse).collect()
    }
}

/// Reusable forward/backward buffers for one [`MlpSpec`] shape.
///
/// Holds the flat per-layer activations, the two delta buffers backprop
/// ping-pongs between, the gradient accumulator, and the precomputed layer
/// offsets. [`MlpScratch::ensure`] sizes everything on first use (or on a
/// spec change); after that, training and inference allocate nothing per
/// sample.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    /// Flat activations; layer `l` lives at `act_off[l]..act_off[l] + layers[l]`.
    acts: Vec<f32>,
    /// Activation offset per layer (`layers.len()` + 1 sentinel entries).
    act_off: Vec<usize>,
    /// Parameter offset of each layer's weight block.
    param_off: Vec<usize>,
    /// dL/dz of the current layer (sized to the widest layer).
    delta: Vec<f32>,
    /// dL/dz of the previous layer, swapped with `delta` each step.
    prev_delta: Vec<f32>,
    /// Gradient accumulator over the mini-batch (`param_len` entries).
    grads: Vec<f32>,
    /// The layer sizes the buffers were sized for.
    shape: Vec<usize>,
}

impl MlpScratch {
    /// Sizes the forward-pass buffers for `spec` (no-op when already
    /// matching). The training-only buffers (deltas, gradients) are sized
    /// separately by [`MlpScratch::ensure_train`], so inference-only callers
    /// never pay for a `param_len`-sized gradient accumulator.
    fn ensure(&mut self, spec: &MlpSpec) {
        if self.shape == spec.layers {
            return;
        }
        self.shape = spec.layers.clone();
        self.act_off.clear();
        let mut off = 0;
        for &n in &spec.layers {
            self.act_off.push(off);
            off += n;
        }
        self.act_off.push(off);
        self.acts.clear();
        self.acts.resize(off, 0.0);
        self.param_off.clear();
        let mut poff = 0;
        for w in spec.layers.windows(2) {
            self.param_off.push(poff);
            poff += w[0] * w[1] + w[1];
        }
        // A spec change invalidates the training buffers too; they regrow on
        // the next `ensure_train`.
        self.delta.clear();
        self.prev_delta.clear();
        self.grads.clear();
    }

    /// Sizes the backprop buffers on top of [`MlpScratch::ensure`].
    fn ensure_train(&mut self, spec: &MlpSpec) {
        self.ensure(spec);
        let widest = spec.layers.iter().copied().max().expect("non-empty spec");
        self.delta.resize(widest, 0.0);
        self.prev_delta.resize(widest, 0.0);
        self.grads.resize(spec.param_len(), 0.0);
    }
}

/// A trainable MLP: spec plus parameters, with persistent training scratch.
#[derive(Debug, Clone)]
pub struct Mlp {
    spec: MlpSpec,
    params: Vec<f32>,
    hyper: MlpHyper,
    scratch: MlpScratch,
}

impl Mlp {
    /// Creates a freshly initialized MLP.
    pub fn new(spec: MlpSpec, hyper: MlpHyper, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = spec.init_params(&mut rng);
        Mlp { spec, params, hyper, scratch: MlpScratch::default() }
    }

    /// The architecture.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable access to the parameters (aggregation).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Forward pass returning logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.spec.forward(&self.params, x)
    }

    /// Predicted class (argmax of logits).
    pub fn predict_class(&self, x: &[f32]) -> usize {
        let logits = self.forward(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// Sigmoid probability for a single-output (binary) head.
    ///
    /// # Panics
    ///
    /// Panics if the output layer has more than one unit.
    pub fn prob_binary(&self, x: &[f32]) -> f32 {
        assert_eq!(self.spec.output_len(), 1, "binary head required");
        crate::params::sigmoid(self.forward(x)[0])
    }

    /// One SGD step on a mini-batch with a softmax cross-entropy head.
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or a label is out of range.
    pub fn train_classification(&mut self, xs: &[&[f32]], labels: &[usize]) -> f32 {
        assert!(!xs.is_empty() && xs.len() == labels.len(), "batch shape");
        let out = self.spec.output_len();
        assert!(labels.iter().all(|&l| l < out), "label out of range");
        self.train_batch(xs, |logits, i, delta| {
            // Softmax cross-entropy, computed without materializing log-probs:
            // delta = softmax(z) − one_hot(label), loss = lse − z[label].
            let lse = MlpSpec::log_sum_exp(logits);
            for (d, &z) in delta.iter_mut().zip(logits) {
                *d = (z - lse).exp();
            }
            delta[labels[i]] -= 1.0;
            lse - logits[labels[i]]
        })
    }

    /// One SGD step on a mini-batch with a sigmoid binary cross-entropy head.
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the output layer is not a single unit.
    pub fn train_binary(&mut self, xs: &[&[f32]], targets: &[f32]) -> f32 {
        assert!(!xs.is_empty() && xs.len() == targets.len(), "batch shape");
        assert_eq!(self.spec.output_len(), 1, "binary head required");
        self.train_batch(xs, |logits, i, delta| {
            let p = crate::params::sigmoid(logits[0]);
            let y = targets[i];
            let eps = 1e-7f32;
            delta[0] = p - y;
            -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln())
        })
    }

    /// Shared batched backprop on the persistent [`MlpScratch`]; `head`
    /// writes dL/dlogits into the provided buffer and returns the loss.
    /// Every layer runs through the [`kernel`] gemv/ger primitives and no
    /// buffer is allocated inside the sample loop.
    fn train_batch(
        &mut self,
        xs: &[&[f32]],
        head: impl Fn(&[f32], usize, &mut [f32]) -> f32,
    ) -> f32 {
        let spec = &self.spec;
        let n_layers = spec.layers.len() - 1;
        // The scratch moves out so `self.params` stays borrowable.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.ensure_train(spec);
        scratch.grads.fill(0.0);
        let mut total_loss = 0.0f32;

        for (bi, x) in xs.iter().enumerate() {
            // Forward, keeping per-layer activations in the flat buffer.
            assert_eq!(x.len(), spec.input_len(), "input size");
            scratch.acts[..x.len()].copy_from_slice(x);
            for li in 0..n_layers {
                let (n_in, n_out) = (spec.layers[li], spec.layers[li + 1]);
                let off = scratch.param_off[li];
                let weights = &self.params[off..off + n_in * n_out];
                let biases = &self.params[off + n_in * n_out..off + n_in * n_out + n_out];
                let (prev_part, next_part) = scratch.acts.split_at_mut(scratch.act_off[li + 1]);
                let prev = &prev_part[scratch.act_off[li]..];
                kernel::gemv(
                    &mut next_part[..n_out],
                    weights,
                    prev,
                    Some(biases),
                    li + 1 < n_layers,
                );
            }

            let out_off = scratch.act_off[n_layers];
            let logits = &scratch.acts[out_off..out_off + spec.output_len()];
            total_loss += head(logits, bi, &mut scratch.delta[..spec.output_len()]);

            // Backward.
            for li in (0..n_layers).rev() {
                let (n_in, n_out) = (spec.layers[li], spec.layers[li + 1]);
                let off = scratch.param_off[li];
                let prev = &scratch.acts[scratch.act_off[li]..scratch.act_off[li] + n_in];
                let delta = &scratch.delta[..n_out];
                // dW += δ ⊗ a, db += δ.
                kernel::ger(&mut scratch.grads[off..off + n_in * n_out], delta, prev);
                for (g, d) in scratch.grads[off + n_in * n_out..off + n_in * n_out + n_out]
                    .iter_mut()
                    .zip(delta)
                {
                    *g += d;
                }
                if li > 0 {
                    // delta_{l-1} = Wᵀ δ ⊙ relu'(a_{l-1})
                    let weights = &self.params[off..off + n_in * n_out];
                    let prev_delta = &mut scratch.prev_delta[..n_in];
                    prev_delta.fill(0.0);
                    kernel::gemv_t(prev_delta, weights, delta);
                    for (pd, a) in prev_delta.iter_mut().zip(prev) {
                        if *a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    std::mem::swap(&mut scratch.delta, &mut scratch.prev_delta);
                }
            }
        }

        let scale = self.hyper.lr / xs.len() as f32;
        let wd = self.hyper.weight_decay;
        for (p, g) in self.params.iter_mut().zip(&scratch.grads) {
            *p -= scale * g + self.hyper.lr * wd * *p;
        }
        self.scratch = scratch;
        total_loss / xs.len() as f32
    }
}

/// An MNIST-style FL participant holding one-class image data (§VIII-E).
#[derive(Debug, Clone)]
pub struct MlpClient {
    model: Mlp,
    user: UserId,
    data: Arc<ImageDataset>,
    samples: Vec<usize>,
    rng_salt: u64,
}

impl MlpClient {
    /// Builds a client over `samples` (indices into `data`).
    pub fn new(
        spec: MlpSpec,
        hyper: MlpHyper,
        user: UserId,
        data: Arc<ImageDataset>,
        samples: Vec<usize>,
        seed: u64,
    ) -> Self {
        MlpClient { model: Mlp::new(spec, hyper, seed), user, data, samples, rng_salt: seed }
    }

    /// The underlying model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Classification accuracy over the given samples.
    pub fn accuracy_on(&self, samples: &[usize]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let hits = samples
            .iter()
            .filter(|&&s| {
                self.model.predict_class(self.data.image(s)) == self.data.label(s) as usize
            })
            .count();
        hits as f64 / samples.len() as f64
    }
}

impl Participant for MlpClient {
    fn user(&self) -> UserId {
        self.user
    }

    fn agg_len(&self) -> usize {
        self.model.spec.param_len()
    }

    fn agg(&self) -> &[f32] {
        &self.model.params
    }

    fn absorb_agg(&mut self, agg: &[f32]) {
        assert_eq!(agg.len(), self.model.params.len(), "agg size mismatch");
        self.model.params.copy_from_slice(agg);
    }

    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        // Fold the per-participant salt into the protocol's stream so two
        // clients handed identical RNG state still shuffle differently.
        let mut order_rng = StdRng::seed_from_u64(rng.gen::<u64>() ^ self.rng_salt);
        let mut order = self.samples.clone();
        order.shuffle(&mut order_rng);
        let bs = self.model.hyper.batch_size.max(1);
        let mut loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(bs) {
            let xs: Vec<&[f32]> = chunk.iter().map(|&s| self.data.image(s)).collect();
            let labels: Vec<usize> = chunk.iter().map(|&s| self.data.label(s) as usize).collect();
            loss += self.model.train_classification(&xs, &labels);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            loss / batches as f32
        }
    }

    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel { owner: self.user, round, owner_emb: None, agg: self.model.params.clone() }
    }

    fn num_examples(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::ImageGenConfig;

    #[test]
    fn param_len_counts_weights_and_biases() {
        let spec = MlpSpec::new(vec![784, 100, 10]);
        assert_eq!(spec.param_len(), 784 * 100 + 100 + 100 * 10 + 10);
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = MlpSpec::log_softmax(&[1.0, 2.0, 3.0]);
        let total: f32 = lp.iter().map(|&v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(lp.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn learns_xor() {
        // XOR requires the hidden layer — a solid end-to-end backprop check.
        let spec = MlpSpec::new(vec![2, 8, 1]);
        let mut mlp = Mlp::new(spec, MlpHyper { lr: 0.5, weight_decay: 0.0, batch_size: 4 }, 3);
        let xs: Vec<Vec<f32>> =
            vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let refs: Vec<&[f32]> = xs.iter().map(std::vec::Vec::as_slice).collect();
        let mut last = f32::MAX;
        for _ in 0..2000 {
            last = mlp.train_binary(&refs, &ys);
        }
        assert!(last < 0.1, "xor loss stuck at {last}");
        for (x, &y) in xs.iter().zip(&ys) {
            let p = mlp.prob_binary(x);
            assert_eq!(p > 0.5, y > 0.5, "xor({x:?}) = {p}");
        }
    }

    #[test]
    fn classification_gradient_check() {
        let spec = MlpSpec::new(vec![3, 4, 2]);
        let mut mlp =
            Mlp::new(spec.clone(), MlpHyper { lr: 0.0, weight_decay: 0.0, batch_size: 1 }, 5);
        let x = [0.3f32, -0.2, 0.9];
        let label = 1usize;

        let loss_of = |params: &[f32]| -> f64 {
            let logits = spec.forward(params, &x);
            -(MlpSpec::log_softmax(&logits)[label]) as f64
        };

        // Analytic gradient via a training step with lr encoded in params diff:
        // run with tiny lr and recover grad = (before - after) / lr.
        let before = mlp.params().to_vec();
        mlp.hyper.lr = 1e-4;
        mlp.train_classification(&[&x], &[label]);
        let after = mlp.params().to_vec();

        let eps = 1e-2f32;
        // Spot-check a handful of parameters.
        for &pi in &[0usize, 5, 11, spec.param_len() - 1] {
            let ana = (before[pi] - after[pi]) as f64 / 1e-4;
            let mut pp = before.clone();
            pp[pi] += eps;
            let mut pm = before.clone();
            pm[pi] -= eps;
            let num = (loss_of(&pp) - loss_of(&pm)) / (2.0 * eps as f64);
            assert!((num - ana).abs() < 2e-2, "param {pi}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn mlp_client_trains_on_one_class() {
        let data = Arc::new(ImageDataset::generate(&ImageGenConfig {
            samples_per_class: 6,
            noise_std: 0.2,
            seed: 9,
        }));
        let samples = data.indices_of_class(3);
        let spec = MlpSpec::new(vec![cia_data::IMAGE_DIM, 32, 10]);
        let mut client = MlpClient::new(
            spec,
            MlpHyper::default(),
            UserId::new(0),
            Arc::clone(&data),
            samples.clone(),
            1,
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            client.train_local(&mut rng);
        }
        // After local-only training on class 3, it should classify its own
        // samples as class 3.
        assert!(client.accuracy_on(&samples) > 0.9);
        let snap = client.snapshot(1);
        assert!(snap.owner_emb.is_none());
        assert_eq!(snap.agg.len(), client.agg_len());
    }
}
