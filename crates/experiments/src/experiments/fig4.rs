//! Figure 4 — privacy/utility trade-off of the Share-less strategy on PRME
//! (F1-score utility, POI datasets only).

use crate::experiments::fig3::tradeoff;
use crate::runner::ModelKind;
use crate::tables::Table;
use cia_data::presets::{Preset, Scale};

/// Regenerates Figure 4 (as a table of the plotted series).
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    vec![tradeoff(
        ModelKind::Prme,
        &[Preset::Foursquare, Preset::Gowalla],
        scale,
        seed,
        format!("Figure 4 — Attack accuracy and F1-score trade-off, PRME ({scale} scale)"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig4_covers_all_cells() {
        let tables = run(Scale::Smoke, 19);
        // 2 datasets x 3 protocols x 2 policies.
        assert_eq!(tables[0].rows.len(), 12);
        assert!(tables[0].rows.iter().all(|r| r[5].starts_with("F1@20")));
    }
}
