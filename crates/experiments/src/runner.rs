//! The shared experiment runner — a thin consumer of the `cia-scenarios`
//! spec types and engine.
//!
//! Everything a table or figure needs — the spec vocabulary
//! ([`ModelKind`], [`ProtocolKind`], [`DefenseKind`], [`ScaleParams`]), the
//! dataset substrate ([`build_setup`]) and the end-to-end engine
//! ([`run_recsys`]) — lives in `cia-scenarios` now; experiments only choose
//! *which* scenarios reproduce a paper artifact. New workloads (churn,
//! stragglers, sybils, partial participation) are one `dynamics` block away
//! instead of a new hand-wired function — see `crates/scenarios/README.md`.

pub use cia_scenarios::setup::{build_setup, RecsysSetup};
pub use cia_scenarios::spec::{DefenseKind, ModelKind, ProtocolKind, ScaleParams};
pub use cia_scenarios::RunResult;

/// One experiment configuration: a scenario spec under its legacy name.
/// `ScenarioSpec::new` defaults to the paper's setting — full sharing, no
/// defense, single adversary, static population.
pub type RunSpec = cia_scenarios::ScenarioSpec;

/// Runs one experiment end to end and reports attack + utility.
///
/// # Panics
///
/// Panics if the spec fails validation (experiment specs are built
/// programmatically, so a violation is a bug).
pub fn run_recsys(spec: &RunSpec) -> RunResult {
    cia_scenarios::run_quiet(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::presets::{Preset, Scale};

    #[test]
    fn smoke_fl_gmf_run() {
        let spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let r = run_recsys(&spec);
        assert!(r.attack.max_aac > r.attack.random_bound, "attack below random");
        assert!(r.utility > 0.0, "HR must be positive");
        assert_eq!(r.utility_metric, "HR@20");
    }

    #[test]
    fn smoke_gossip_prme_run() {
        let spec = RunSpec::new(
            Preset::Foursquare,
            ModelKind::Prme,
            ProtocolKind::RandGossip,
            Scale::Smoke,
        );
        let r = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&r.attack.max_aac));
        assert_eq!(r.utility_metric, "F1@20");
    }

    #[test]
    fn smoke_share_less_and_dp_run() {
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        spec.defense = DefenseKind::ShareLess { tau: 0.3 };
        let sl = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&sl.attack.max_aac));

        spec.defense = DefenseKind::Dp { epsilon: Some(10.0) };
        let dp = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&dp.attack.max_aac));
    }

    #[test]
    fn smoke_coalition_run() {
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, Scale::Smoke);
        spec.colluders = 4;
        let r = run_recsys(&spec);
        assert!((0.0..=1.0).contains(&r.attack.max_aac));
        assert!(r.attack.upper_bound > 0.0, "coalition saw nobody");
    }

    #[test]
    fn online_bound_matches_static_bound_without_dynamics() {
        // Every table/figure run is a static-population scenario, so the
        // dynamics-aware bound must coincide with the paper's coverage
        // bound — tables keep reporting one number.
        let spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let r = run_recsys(&spec);
        assert_eq!(r.attack.upper_bound_online, r.attack.upper_bound);
        for p in &r.attack.history {
            assert_eq!(p.upper_bound_online, p.upper_bound);
        }
    }

    #[test]
    fn online_bound_separates_under_churn() {
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        spec.dynamics = cia_scenarios::DynamicsSpec {
            leave_prob: 0.2,
            join_prob: 0.3,
            initial_online: 0.8,
            ..Default::default()
        };
        let r = run_recsys(&spec);
        assert!(
            r.attack.history.iter().all(|p| p.upper_bound_online <= p.upper_bound + 1e-12),
            "online bound exceeded the static bound"
        );
        assert!(
            r.attack.history.iter().any(|p| p.upper_bound_online < p.upper_bound),
            "churn never separated the bounds"
        );
    }

    #[test]
    fn setup_tables_are_aligned() {
        let s = build_setup(Preset::MovieLens, Scale::Smoke, None, 1);
        assert_eq!(s.truth_table().len(), s.data.num_users());
        assert_eq!(s.owner_table().len(), s.data.num_users());
        assert_eq!(s.k, 5);
    }
}
