//! Attack metrics (§V-C): per-round attack accuracy, average attack accuracy
//! (AAC), Max AAC over rounds, Best-10% AAC, the hyper-geometric random bound
//! and the observation-coverage upper bound.

use serde::{Deserialize, Serialize};

/// Accuracy of one predicted community (Eq. 6): `|Ĉ ∩ C| / K`.
pub fn community_accuracy<T: PartialEq>(predicted: &[T], truth: &[T], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = predicted.iter().filter(|p| truth.contains(p)).count();
    hits as f64 / k as f64
}

/// The random-guess expectation: drawing `K` of `N` candidates without
/// replacement hits `K·(K/N)` community members, i.e. accuracy `K/N`.
pub fn random_bound(k: usize, candidates: usize) -> f64 {
    if candidates == 0 {
        0.0
    } else {
        (k as f64 / candidates as f64).min(1.0)
    }
}

/// The minimum accuracy among the best `frac` (e.g. 0.1) of attackers —
/// the paper's "Best 10% AAC".
pub fn best_fraction_floor(accuracies: &[f64], frac: f64) -> f64 {
    if accuracies.is_empty() {
        return 0.0;
    }
    let mut sorted = accuracies.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite accuracies"));
    let take = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
    sorted[take - 1]
}

/// Descending, NaN-safe comparison of `(score, id)` pairs for attack
/// rankings: NaN scores (a destroyed DP-noised model) sink to the bottom and
/// ties break on ascending id for determinism.
pub fn rank_desc(a: &(f32, u32), b: &(f32, u32)) -> std::cmp::Ordering {
    let ax = if a.0.is_nan() { f32::NEG_INFINITY } else { a.0 };
    let bx = if b.0.is_nan() { f32::NEG_INFINITY } else { b.0 };
    bx.partial_cmp(&ax).expect("mapped NaN away").then_with(|| a.1.cmp(&b.1))
}

/// Bounded streaming top-`k` selection under the [`rank_desc`] order.
///
/// Scores stream in one at a time (or tile by tile) and the selector keeps
/// only the current best `k` in a small sorted buffer — memory is `O(k)`
/// instead of the catalog-length score vector a score-then-sort needs, which
/// is what keeps HR@20/F1@20 evaluation tractable at a 10⁵-item catalog.
///
/// Because [`rank_desc`] is a strict total order over distinct ids (NaN sinks
/// to the bottom, ties break on ascending id), the result is *exactly* the
/// first `k` entries of a full sort of the same pairs — see the equivalence
/// proptest in `cia-scenarios`.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    buf: Vec<(f32, u32)>,
}

impl TopK {
    /// Creates a selector retaining the best `k` pairs.
    pub fn new(k: usize) -> Self {
        TopK { k, buf: Vec::with_capacity(k.saturating_add(1).min(4096)) }
    }

    /// Offers one `(score, id)` pair.
    pub fn push(&mut self, score: f32, id: u32) {
        if self.k == 0 {
            return;
        }
        let cand = (score, id);
        // Fast path once warm: almost every candidate loses to the cutoff.
        if self.buf.len() == self.k
            && rank_desc(&cand, &self.buf[self.k - 1]) != std::cmp::Ordering::Less
        {
            return;
        }
        let pos = self.buf.binary_search_by(|e| rank_desc(e, &cand)).unwrap_or_else(|e| e);
        self.buf.insert(pos, cand);
        self.buf.truncate(self.k);
    }

    /// Number of pairs currently retained (≤ `k`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been offered yet (or `k == 0`).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained pairs, best first — identical to
    /// `sort_by(rank_desc); truncate(k)` over everything pushed.
    pub fn into_sorted(self) -> Vec<(f32, u32)> {
        self.buf
    }

    /// The retained ids, best first.
    pub fn into_ids(self) -> Vec<u32> {
        self.buf.into_iter().map(|(_, id)| id).collect()
    }
}

/// One evaluated round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundPoint {
    /// Round index.
    pub round: u64,
    /// Average attack accuracy over all attackers/targets this round.
    pub aac: f64,
    /// Minimum accuracy among the best 10% of attackers this round.
    pub best10: f64,
    /// Mean accuracy upper bound (fraction of each true community whose
    /// models the adversary has observed).
    pub upper_bound: f64,
    /// Dynamics-aware bound: the fraction of each true community whose
    /// models the adversary has observed *and* whose owners were live in the
    /// evaluated round. Always ≤ [`RoundPoint::upper_bound`]; equal for
    /// static populations. Under churn the static bound conflates "offline"
    /// with "unobserved" — this one separates them.
    pub upper_bound_online: f64,
}

/// Accumulates per-round accuracies and reports the paper's summary metrics.
///
/// ```
/// use cia_core::AttackTracker;
/// let mut t = AttackTracker::new(10, 100);
/// t.record(0, &[0.1, 0.2], &[1.0, 1.0]);
/// t.record(1, &[0.5, 0.7], &[1.0, 1.0]);
/// let out = t.outcome();
/// assert_eq!(out.max_aac, 0.6);
/// assert_eq!(out.max_round, 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackTracker {
    k: usize,
    candidates: usize,
    history: Vec<RoundPoint>,
}

impl AttackTracker {
    /// Creates a tracker for community size `k` over `candidates` possible
    /// community members (used for the random bound).
    pub fn new(k: usize, candidates: usize) -> Self {
        AttackTracker { k, candidates, history: Vec::new() }
    }

    /// Records one evaluated round: per-attacker accuracies and per-attacker
    /// observation-coverage upper bounds. The online bound is taken equal to
    /// the static bound — the right call for attacks over static populations
    /// (use [`AttackTracker::record_with_online`] when a dynamics layer
    /// supplies a live participant set).
    pub fn record(&mut self, round: u64, accuracies: &[f64], upper_bounds: &[f64]) {
        self.record_with_online(round, accuracies, upper_bounds, upper_bounds);
    }

    /// Records one evaluated round with a separate dynamics-aware bound:
    /// `upper_bounds_online[i]` counts only community members both observed
    /// and currently live. Offline/never-observed attackers must be excluded
    /// from *both* bound slices by the caller (their zeros are absence of
    /// observation vantage, not coverage evidence — including them deflates
    /// the reported bound under churn); the accuracy slice stays over the
    /// full attacker population, so the two slices may differ in length.
    pub fn record_with_online(
        &mut self,
        round: u64,
        accuracies: &[f64],
        upper_bounds: &[f64],
        upper_bounds_online: &[f64],
    ) {
        let aac = mean(accuracies);
        let best10 = best_fraction_floor(accuracies, 0.1);
        self.history.push(RoundPoint {
            round,
            aac,
            best10,
            upper_bound: mean(upper_bounds),
            upper_bound_online: mean(upper_bounds_online),
        });
    }

    /// Number of evaluated rounds so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The evaluated history.
    pub fn history(&self) -> &[RoundPoint] {
        &self.history
    }

    /// Replaces the recorded history (checkpoint resume). `k` and the
    /// candidate count are construction-time constants and stay untouched.
    pub fn restore_history(&mut self, history: Vec<RoundPoint>) {
        self.history = history;
    }

    /// Summarizes into the paper's reporting format.
    pub fn outcome(&self) -> AttackOutcome {
        let best =
            self.history.iter().max_by(|a, b| a.aac.partial_cmp(&b.aac).expect("finite AAC"));
        match best {
            Some(p) => AttackOutcome {
                k: self.k,
                max_aac: p.aac,
                best10_aac: p.best10,
                max_round: p.round,
                random_bound: random_bound(self.k, self.candidates),
                upper_bound: p.upper_bound,
                upper_bound_online: p.upper_bound_online,
                history: self.history.clone(),
            },
            None => AttackOutcome {
                k: self.k,
                max_aac: 0.0,
                best10_aac: 0.0,
                max_round: 0,
                random_bound: random_bound(self.k, self.candidates),
                upper_bound: 0.0,
                upper_bound_online: 0.0,
                history: Vec::new(),
            },
        }
    }
}

/// Final attack report, matching the columns of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Community size `K`.
    pub k: usize,
    /// Maximum average attack accuracy over all evaluated rounds.
    pub max_aac: f64,
    /// Best-10% AAC at the round where Max AAC was achieved.
    pub best10_aac: f64,
    /// The round achieving Max AAC.
    pub max_round: u64,
    /// The random-guess expectation `K/N`.
    pub random_bound: f64,
    /// Mean observation-coverage upper bound at the Max AAC round.
    pub upper_bound: f64,
    /// Dynamics-aware bound at the Max AAC round (observed ∧ live members
    /// only); ≤ `upper_bound`, equal for static populations.
    pub upper_bound_online: f64,
    /// Full per-round history.
    pub history: Vec<RoundPoint>,
}

impl AttackOutcome {
    /// Max AAC as a multiple of the random bound ("up to 10× random
    /// guessing" in the paper's abstract).
    pub fn advantage_over_random(&self) -> f64 {
        if self.random_bound == 0.0 {
            0.0
        } else {
            self.max_aac / self.random_bound
        }
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(community_accuracy(&[1, 2, 3], &[2, 3, 4], 3), 2.0 / 3.0);
        assert_eq!(community_accuracy::<u32>(&[], &[1], 5), 0.0);
        assert_eq!(community_accuracy(&[1], &[1], 0), 0.0);
    }

    #[test]
    fn random_bound_is_k_over_n() {
        assert_eq!(random_bound(50, 943), 50.0 / 943.0);
        assert_eq!(random_bound(10, 0), 0.0);
        assert_eq!(random_bound(10, 5), 1.0);
    }

    #[test]
    fn best_fraction_takes_floor_of_top_decile() {
        let accs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        // Top 10% = {0.91..1.00}; floor = 0.91.
        assert!((best_fraction_floor(&accs, 0.1) - 0.91).abs() < 1e-12);
        // Tiny populations: at least one attacker.
        assert_eq!(best_fraction_floor(&[0.3, 0.7], 0.1), 0.7);
        assert_eq!(best_fraction_floor(&[], 0.1), 0.0);
    }

    #[test]
    fn tracker_tracks_max_round() {
        let mut t = AttackTracker::new(5, 50);
        t.record(0, &[0.2, 0.4], &[0.5, 0.5]);
        t.record(2, &[0.6, 0.8], &[1.0, 1.0]);
        t.record(4, &[0.1, 0.1], &[1.0, 1.0]);
        let out = t.outcome();
        assert_eq!(out.max_round, 2);
        assert!((out.max_aac - 0.7).abs() < 1e-12);
        assert!((out.best10_aac - 0.8).abs() < 1e-12);
        assert!((out.upper_bound - 1.0).abs() < 1e-12);
        // Plain `record` treats the population as static.
        assert_eq!(out.upper_bound_online, out.upper_bound);
        assert!((out.random_bound - 0.1).abs() < 1e-12);
        assert!((out.advantage_over_random() - 7.0).abs() < 1e-9);
        assert_eq!(out.history.len(), 3);
    }

    #[test]
    fn online_bound_is_tracked_separately() {
        let mut t = AttackTracker::new(5, 50);
        // Bound slices may be shorter than the accuracy slice (offline
        // attackers excluded) and the online bound sits below the static one.
        t.record_with_online(0, &[0.2, 0.4, 0.0], &[0.8, 0.6], &[0.4, 0.2]);
        let p = &t.history()[0];
        assert!((p.upper_bound - 0.7).abs() < 1e-12);
        assert!((p.upper_bound_online - 0.3).abs() < 1e-12);
        assert!(p.upper_bound_online <= p.upper_bound);
        let out = t.outcome();
        assert!((out.upper_bound_online - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_outcome_is_zeroed() {
        let t = AttackTracker::new(5, 50);
        let out = t.outcome();
        assert_eq!(out.max_aac, 0.0);
        assert!(t.is_empty());
    }

    fn full_sort_prefix(pairs: &[(f32, u32)], k: usize) -> Vec<(f32, u32)> {
        let mut v = pairs.to_vec();
        v.sort_by(rank_desc);
        v.truncate(k);
        v
    }

    #[test]
    fn topk_matches_full_sort_prefix() {
        let pairs: Vec<(f32, u32)> =
            (0..100u32).map(|i| (((i * 37) % 19) as f32 * 0.5 - 3.0, i)).collect();
        for k in [0, 1, 7, 20, 100, 150] {
            let mut sel = TopK::new(k);
            for &(s, id) in &pairs {
                sel.push(s, id);
            }
            assert_eq!(sel.into_sorted(), full_sort_prefix(&pairs, k), "k = {k}");
        }
    }

    #[test]
    fn topk_sinks_nan_and_breaks_ties_on_id() {
        // Same fixture as the runner's historical `top_k_by_score` tests:
        // NaN sinks below everything, equal scores order by ascending id.
        let pairs = [(1.0, 0), (f32::NAN, 1), (2.0, 2), (2.0, 3), (1.0, 4)];
        let mut sel = TopK::new(3);
        for &(s, id) in &pairs {
            sel.push(s, id);
        }
        assert_eq!(sel.into_ids(), vec![2, 3, 0]);
        // With k ≥ n the NaN still lands dead last.
        let mut sel = TopK::new(8);
        for &(s, id) in &pairs {
            sel.push(s, id);
        }
        assert_eq!(sel.into_ids(), vec![2, 3, 0, 4, 1]);
    }

    #[test]
    fn topk_zero_k_retains_nothing() {
        let mut sel = TopK::new(0);
        sel.push(5.0, 1);
        assert!(sel.is_empty());
        assert_eq!(sel.len(), 0);
        assert_eq!(sel.into_ids(), Vec::<u32>::new());
    }
}
