//! Typed identifiers for users and items.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a participant (client/user) in the collaborative system.
///
/// Users are dense indices `0..N`, which lets simulation state live in flat
/// vectors indexed by `UserId::index`.
///
/// ```
/// use cia_data::UserId;
/// let u = UserId::new(3);
/// assert_eq!(u.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id from a dense index.
    pub fn new(index: u32) -> Self {
        UserId(index)
    }

    /// Returns the raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, for vector indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

/// Identifier of a catalog item (movie, point of interest, ...).
///
/// ```
/// use cia_data::ItemId;
/// let i = ItemId::new(10);
/// assert_eq!(i.raw(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(u32);

impl ItemId {
    /// Creates an item id from a dense index.
    pub fn new(index: u32) -> Self {
        ItemId(index)
    }

    /// Returns the raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, for vector indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_roundtrip() {
        let u = UserId::new(42);
        assert_eq!(u.raw(), 42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId::from(42));
        assert_eq!(u.to_string(), "u42");
    }

    #[test]
    fn item_id_roundtrip() {
        let i = ItemId::new(7);
        assert_eq!(i.raw(), 7);
        assert_eq!(i.to_string(), "i7");
        assert!(ItemId::new(1) < ItemId::new(2));
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UserId>();
        assert_send_sync::<ItemId>();
    }
}
