//! Benchmark support library.
//!
//! The actual Criterion benchmarks live in `benches/`:
//!
//! * `paper_artifacts` — one benchmark per paper table/figure, running the
//!   corresponding experiment at smoke scale (the regeneration cost of each
//!   artifact);
//! * `micro` — hot-path micro-benchmarks (kernel primitives, catalog scoring,
//!   momentum updates, MLP training, FL/gossip round steps, DP noising,
//!   attack ranking), with `_scalar_ref`/`_naive` baselines for the paths the
//!   kernel layer replaced.
//!
//! # Running the benches
//!
//! ```text
//! cargo bench -p cia-bench --bench micro              # full timing run
//! cargo bench -p cia-bench --bench micro -- kernel    # name filter
//! cargo bench -p cia-bench -- --test                  # smoke: one iteration
//! scripts/bench_smoke.sh                              # smoke + clippy gate
//! scripts/bench_kernels.sh                            # regenerate BENCH_kernels.json
//! ```
//!
//! Timing runs append JSON lines to the file named by the `CRITERION_JSON`
//! env var; [`report`] folds that stream into `BENCH_kernels.json`, pairing
//! each optimized benchmark with its scalar baseline to compute speedups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use cia_data::presets::Scale;
use cia_experiments::tables::Table;

/// Runs one named experiment at the given scale (shared by the benches).
///
/// # Panics
///
/// Panics on unknown experiment names.
pub fn run_experiment(name: &str, scale: Scale, seed: u64) -> Vec<Table> {
    use cia_experiments::experiments as exp;
    match name {
        "table1" => exp::table1::run(scale, seed),
        "table2" => exp::table2::run(scale, seed),
        "table3" => exp::table3::run(scale, seed),
        "table4" => exp::table4::run(scale, seed),
        "table5" => exp::table5::run(scale, seed),
        "table6" => exp::table6::run(scale, seed),
        "table7" => exp::table7::run(scale, seed),
        "table8" => exp::table8::run(scale, seed),
        "table9" => exp::table9::run(scale, seed),
        "fig1" => exp::fig1::run(scale, seed),
        "fig3" => exp::fig3::run(scale, seed),
        "fig4" => exp::fig4::run(scale, seed),
        "fig5" => exp::fig5::run(scale, seed),
        "aia" => exp::aia::run(scale, seed),
        "mnist" => exp::mnist::run(scale, seed),
        "ablation" => exp::ablation::run(scale, seed),
        other => panic!("unknown experiment `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_covers_table1() {
        let t = run_experiment("table1", Scale::Smoke, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn dispatch_rejects_unknown() {
        let _ = run_experiment("nope", Scale::Smoke, 1);
    }
}
