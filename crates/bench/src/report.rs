//! Turns the JSON-lines stream the vendored criterion harness emits (via the
//! `CRITERION_JSON` env var) into `BENCH_kernels.json`: one entry per
//! benchmark, with a `speedup` field wherever an optimized benchmark has a
//! `_scalar_ref` or `_naive` twin.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Sustained queries per second, for throughput rows (the serve
    /// benchmark emits it alongside the per-query median).
    pub qps: Option<f64>,
}

/// Suffixes marking a benchmark as the scalar/naive baseline of its pair.
const BASELINE_SUFFIXES: [&str; 2] = ["_scalar_ref", "_naive"];

/// Parses the `{"name": ..., "median_ns": ...}` JSON lines the harness
/// appends. Later duplicates win (a re-run overwrites the previous result).
#[must_use]
pub fn parse_jsonl(input: &str) -> Vec<Measurement> {
    let mut seen: BTreeMap<String, (f64, Option<f64>)> = BTreeMap::new();
    for line in input.lines() {
        let Some(name) = field_str(line, "name") else { continue };
        let Some(median) = field_num(line, "median_ns") else { continue };
        seen.insert(name, (median, field_num(line, "qps")));
    }
    seen.into_iter().map(|(name, (median_ns, qps))| Measurement { name, median_ns, qps }).collect()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .map_or(line.len(), |e| e + start);
    line[start..end].parse().ok()
}

/// Renders the report: every measurement, plus `baseline_ns`/`speedup`
/// entries pairing optimized benchmarks with their `_scalar_ref`/`_naive`
/// twins.
#[must_use]
pub fn render_report(measurements: &[Measurement]) -> String {
    let by_name: BTreeMap<&str, f64> =
        measurements.iter().map(|m| (m.name.as_str(), m.median_ns)).collect();
    let mut out = String::from("[\n");
    let mut first = true;
    for m in measurements {
        if BASELINE_SUFFIXES.iter().any(|s| m.name.ends_with(s)) {
            continue; // folded into its optimized twin
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  {{\"name\": \"{}\", \"median_ns\": {:.1}", m.name, m.median_ns);
        let baseline =
            BASELINE_SUFFIXES.iter().find_map(|s| by_name.get(format!("{}{}", m.name, s).as_str()));
        if let Some(&base) = baseline {
            let _ = write!(
                out,
                ", \"baseline_ns\": {:.1}, \"speedup\": {:.2}",
                base,
                base / m.median_ns
            );
        }
        if let Some(qps) = m.qps {
            let _ = write!(out, ", \"qps\": {qps:.0}");
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"name": "kernel_dot_1024", "median_ns": 100.0, "min_ns": 90.0, "max_ns": 120.0}
{"name": "kernel_dot_1024_scalar_ref", "median_ns": 400.0, "min_ns": 390.0, "max_ns": 410.0}
{"name": "gt_topk", "median_ns": 50.0, "min_ns": 49.0, "max_ns": 52.0}
{"name": "gt_topk_naive", "median_ns": 500.0, "min_ns": 480.0, "max_ns": 520.0}
{"name": "lonely_bench", "median_ns": 7.5, "min_ns": 7.0, "max_ns": 8.0}
{"name": "serve_qps", "median_ns": 2000.0, "qps": 500000}
"#;

    #[test]
    fn parses_and_pairs_baselines() {
        let ms = parse_jsonl(SAMPLE);
        assert_eq!(ms.len(), 6);
        let report = render_report(&ms);
        assert!(report.contains("\"name\": \"kernel_dot_1024\""));
        assert!(report.contains("\"speedup\": 4.00"));
        assert!(report.contains("\"speedup\": 10.00"));
        // Baselines are folded, not listed standalone.
        assert!(!report.contains("\"name\": \"kernel_dot_1024_scalar_ref\""));
        // Unpaired benchmarks appear without a speedup field.
        assert!(report.contains("\"name\": \"lonely_bench\", \"median_ns\": 7.5}"));
        // Throughput rows carry their qps field through.
        assert!(report.contains("\"name\": \"serve_qps\", \"median_ns\": 2000.0, \"qps\": 500000}"));
    }

    #[test]
    fn rerun_lines_overwrite_earlier_ones() {
        let twice = format!(
            "{SAMPLE}{}",
            "{\"name\": \"lonely_bench\", \"median_ns\": 9.0, \"min_ns\": 9.0, \"max_ns\": 9.0}\n"
        );
        let ms = parse_jsonl(&twice);
        let lonely = ms.iter().find(|m| m.name == "lonely_bench").unwrap();
        assert_eq!(lonely.median_ns, 9.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let ms = parse_jsonl("not json\n{\"name\": \"x\"}\n{\"median_ns\": 3}\n");
        assert!(ms.is_empty());
        assert_eq!(render_report(&ms), "[\n\n]\n");
    }
}
