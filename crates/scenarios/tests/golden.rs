//! Golden-file schema tests: every built-in suite, run at smoke scale with
//! seed 42 under `--no-timing`, must reproduce its committed transcript
//! byte for byte. Any schema drift — a renamed field, a reordered key, a
//! changed float format, a new record type — fails loudly here instead of
//! silently breaking downstream consumers of the JSONL stream.
//!
//! To regenerate after an *intentional* schema change:
//!
//! ```text
//! for s in builtin participation-sweep defense-dynamics-grid \
//!          pers-gossip-churn adaptive-sybils; do
//!   cargo run --release -q -p cia-scenarios --bin scenario -- \
//!     run --suite $s --scale smoke --seed 42 --no-timing \
//!     --out crates/scenarios/tests/golden/$s-smoke.jsonl
//! done
//! ```

use cia_data::presets::Scale;
use cia_scenarios::runner::{run_suite, validate_jsonl, RunOptions};
use cia_scenarios::{named_suite, SuiteSpec};

fn assert_matches_golden(suite: SuiteSpec, golden: &str, name: &str) {
    let mut buf = Vec::new();
    run_suite(&suite, &RunOptions::default(), &mut buf).unwrap();
    let actual = String::from_utf8(buf).unwrap();
    // The golden itself must be schema-valid (guards against committing a
    // stale transcript after a validator change).
    validate_jsonl(golden).unwrap_or_else(|e| panic!("{name}: committed golden invalid: {e}"));
    if actual != golden {
        // Byte-level diff output would be unreadable; report the first
        // differing line instead.
        for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                a,
                g,
                "{name}: line {} drifted from the golden transcript \
                 (regenerate if the schema change is intentional — see module docs)",
                i + 1
            );
        }
        panic!(
            "{name}: stream length drifted ({} vs {} golden lines)",
            actual.lines().count(),
            golden.lines().count()
        );
    }
}

macro_rules! golden_test {
    ($test:ident, $suite:literal) => {
        #[test]
        fn $test() {
            assert_matches_golden(
                named_suite($suite, Scale::Smoke, 42).unwrap(),
                include_str!(concat!("golden/", $suite, "-smoke.jsonl")),
                $suite,
            );
        }
    };
}

golden_test!(builtin_suite_matches_golden, "builtin");
golden_test!(participation_sweep_matches_golden, "participation-sweep");
golden_test!(defense_dynamics_grid_matches_golden, "defense-dynamics-grid");
golden_test!(pers_gossip_churn_matches_golden, "pers-gossip-churn");
golden_test!(adaptive_sybils_matches_golden, "adaptive-sybils");
