//! Event-driven node runtime: typed protocol messages under a deterministic
//! virtual-clock scheduler.
//!
//! The lockstep round loops in `cia-federated` and `cia-gossip` (train →
//! aggregate/mix → evaluate, one barrier per phase) are re-expressed here as
//! *nodes* consuming typed protocol messages plus injected timer events — the
//! Maelstrom-style shape — with the deterministic simulator demoted to one
//! [`Scheduler`] over that API: a virtual clock, two delivery lanes
//! (messages, then timers) and a seeded delivery order.
//!
//! Two delivery policies exist:
//!
//! * [`DeliveryPolicy::Lockstep`] delivers same-time messages in FIFO
//!   (enqueue) order. The protocol ports in `cia-federated` /`cia-gossip`
//!   replay today's lockstep semantics *exactly* under this policy — golden
//!   JSONL transcripts are byte-identical.
//! * [`DeliveryPolicy::Interleaved`] shuffles same-time message-lane
//!   deliveries with a seeded hash (timers keep FIFO order). The protocol
//!   ports are written to be *insensitive* to this reordering (mailboxes are
//!   sorted on canonical keys before any float is touched), so every
//!   interleaving seed still reproduces the lockstep transcript byte for
//!   byte — the property `cia-scenarios` pins with proptest.
//!
//! The crate also hosts the two cross-protocol abstractions the runtime
//! unified: [`LivenessEvent`] (the single observer event enum replacing the
//! `on_participants` / `on_wake_set` / `node_available` hook zoo) and
//! [`Checkpointable`] (the one export/restore trait the checkpoint codec
//! drives).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cia_models::SharedModel;
use cia_obs::Recorder;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Virtual-time slots per protocol round. Each round occupies the half-open
/// window `[round * SLOTS_PER_ROUND, (round + 1) * SLOTS_PER_ROUND)`; the
/// protocol ports lay their phases out on slots inside it (see
/// `crates/scenarios/README.md` for both timelines).
pub const SLOTS_PER_ROUND: u64 = 8;

/// A node address inside one scheduler (an index into the node slice handed
/// to [`Scheduler::run_until`]).
pub type NodeId = u32;

/// Typed protocol messages. One enum covers both protocols so a single
/// scheduler, codec and trace vocabulary serves FedAvg and gossip alike;
/// nodes simply ignore variants that are not addressed to their role.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // --- Federated learning (server ⇄ client) ---
    /// Server → client: train this round on the broadcast global model.
    /// Aggregation rides along: `acc` threads the shared sparse-update
    /// accumulator through the participant chain (each client folds
    /// `weight · (own − global)` into it while its parameters are cache-hot,
    /// exactly like the lockstep fused path), and `snap` carries a recycled
    /// snapshot carcass when the round materializes client models for the
    /// observer or a DP transform.
    TrainRequest {
        /// Round index.
        round: u64,
        /// Local epochs to run.
        epochs: usize,
        /// The broadcast global model (shared, read-only).
        global: Arc<Vec<f32>>,
        /// This client's normalized aggregation weight (`wᵢ / Σw`).
        weight: f32,
        /// The threaded sparse-update accumulator (`None` on the DP path,
        /// which aggregates dense transformed snapshots instead).
        acc: Option<Vec<f32>>,
        /// Snapshot carcass to fill when the round materializes models.
        snap: Option<SharedModel>,
    },
    /// Client → server: the trained reply closing one link of the chain.
    ModelUpdate {
        /// Round index.
        round: u64,
        /// The client's index.
        client: u32,
        /// Final local training loss.
        loss: f32,
        /// The accumulator handed back (with this client's update folded in).
        acc: Option<Vec<f32>>,
        /// The materialized snapshot, when requested.
        snap: Option<SharedModel>,
    },
    /// The post-aggregation broadcast of the new global model — the hook
    /// where snapshot publication to `cia-serve` is scheduled as an event
    /// instead of an out-of-band runner step.
    GlobalBroadcast {
        /// The round whose aggregate is being broadcast.
        round: u64,
    },

    // --- Gossip (coordinator ⇄ peer) ---
    /// Coordinator → peer: your refreshed out-view (peers keep a local copy
    /// of their neighbor list; the authoritative table stays with the graph).
    ViewPush {
        /// Round index.
        round: u64,
        /// The refreshed out-view.
        view: Vec<u32>,
    },
    /// A model push. Leaving the sender it is addressed at the network
    /// (the coordinator routes it); after routing it is forwarded verbatim
    /// to `dest`'s inbox.
    ModelPush {
        /// Round index.
        round: u64,
        /// Sending node index (canonical routing order is ascending sender,
        /// independent of delivery interleaving).
        sender: u32,
        /// Destination node.
        dest: u32,
        /// The pushed model snapshot.
        model: SharedModel,
    },
    /// A node's scheduled view-refresh timer coming due (`Exp(rate)`
    /// inter-arrival times). These are the events that legitimately sit in
    /// the queue *across* rounds — and therefore across checkpoints.
    RefreshTimer {
        /// The node whose refresh is due.
        node: u32,
    },
    /// Coordinator → awake peer: wake up and push one model to `dest`
    /// (carrying a recycled snapshot carcass when one is available).
    WakeSend {
        /// Round index.
        round: u64,
        /// Destination drawn from the sender's current view.
        dest: u32,
        /// Recycled snapshot carcass (buffer reuse only; contents ignored).
        snap: Option<SharedModel>,
    },
    /// Timer at an awake peer: mix the inbox into local state and train.
    MixTrain {
        /// Round index.
        round: u64,
        /// Local epochs to run.
        epochs: usize,
    },
    /// Peer → coordinator: the round's training report (loss plus the
    /// Pers-Gossip `(sender, score)` evidence heard while mixing).
    TrainReport {
        /// Round index.
        round: u64,
        /// Reporting node.
        node: u32,
        /// Final local training loss.
        loss: f32,
        /// Personalization evidence heard from the mixed inbox.
        heard: Vec<(u32, f32)>,
    },

    /// Timer at the gossip coordinator: route all buffered [`Msg::ModelPush`]
    /// sends to their destinations' inboxes (in canonical ascending-sender
    /// order), after every push of the round has arrived.
    RouteFlush {
        /// Round index.
        round: u64,
    },

    // --- Round control (both protocols) ---
    /// Timer opening a round (sampling/refresh happen in its handler).
    RoundStart {
        /// Round index.
        round: u64,
    },
    /// Timer closing a round (observe/aggregate/evaluate happen in its
    /// handler, after every message of the round has been delivered).
    RoundEnd {
        /// Round index.
        round: u64,
    },
}

impl Msg {
    /// Stable label for per-message trace spans (and debugging).
    pub fn label(&self) -> &'static str {
        match self {
            Msg::TrainRequest { .. } => "msg:train_request",
            Msg::ModelUpdate { .. } => "msg:model_update",
            Msg::GlobalBroadcast { .. } => "msg:global_broadcast",
            Msg::ViewPush { .. } => "msg:view_push",
            Msg::ModelPush { .. } => "msg:model_push",
            Msg::RefreshTimer { .. } => "msg:refresh_timer",
            Msg::WakeSend { .. } => "msg:wake_send",
            Msg::MixTrain { .. } => "msg:mix_train",
            Msg::TrainReport { .. } => "msg:train_report",
            Msg::RouteFlush { .. } => "msg:route_flush",
            Msg::RoundStart { .. } => "msg:round_start",
            Msg::RoundEnd { .. } => "msg:round_end",
        }
    }
}

/// How same-virtual-time deliveries are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryPolicy {
    /// FIFO enqueue order within each (time, lane) — replays lockstep
    /// semantics exactly.
    #[default]
    Lockstep,
    /// Same-time *message*-lane deliveries are permuted by a seeded hash;
    /// timers stay FIFO. Protocol ports must be insensitive to this.
    Interleaved {
        /// The interleaving seed.
        seed: u64,
    },
}

/// An event-driven participant: a handler for delivered messages and fired
/// timers. The default timer handler forwards to [`Node::on_message`] so
/// nodes that don't distinguish the lanes implement one method.
pub trait Node {
    /// Handle a delivered protocol message.
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>);

    /// Handle a fired timer event.
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        self.on_message(msg, ctx);
    }
}

/// Delivery lane. Messages deliver before timers at equal virtual time, so
/// a timer scheduled for "end of slot t" observes every message of slot t.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Lane {
    Message,
    Timer,
}

/// A queued event. Ordering key: `(at, lane, order, seq)`.
#[derive(Debug)]
struct Event {
    at: u64,
    lane: Lane,
    /// Seeded permutation key (0 under [`DeliveryPolicy::Lockstep`] and for
    /// every timer, so ties fall through to FIFO `seq`).
    order: u64,
    seq: u64,
    dst: NodeId,
    msg: Msg,
}

impl Event {
    fn key(&self) -> (u64, Lane, u64, u64) {
        (self.at, self.lane, self.order, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// SplitMix64 finalizer — the seeded same-time permutation key.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A pending event in serializable form (checkpoint codecs store these so
/// kill/resume works across a non-empty queue).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedEvent {
    /// Virtual delivery time.
    pub at: u64,
    /// Destination node.
    pub dst: NodeId,
    /// Whether the event rides the timer lane.
    pub timer: bool,
    /// The payload.
    pub msg: Msg,
}

/// The deterministic virtual-clock scheduler: a priority queue of events
/// drained in `(time, lane, order, seq)` order against a slice of nodes.
#[derive(Debug, Default)]
pub struct Scheduler {
    queue: BinaryHeap<Reverse<Event>>,
    now: u64,
    seq: u64,
    policy: DeliveryPolicy,
    obs: Recorder,
}

impl Scheduler {
    /// A fresh scheduler under `policy`, starting at virtual time 0.
    pub fn new(policy: DeliveryPolicy) -> Self {
        Scheduler { queue: BinaryHeap::new(), now: 0, seq: 0, policy, obs: Recorder::new() }
    }

    /// Installs the trace sink: when detail is enabled, every message-lane
    /// delivery slice is bracketed by a span named [`Msg::label`].
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Current virtual time (the timestamp of the last delivered event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of undelivered events.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    fn order_key(&self, lane: Lane, at: u64, seq: u64) -> u64 {
        match (self.policy, lane) {
            (DeliveryPolicy::Interleaved { seed }, Lane::Message) => {
                mix64(seed ^ at.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq)
            }
            _ => 0,
        }
    }

    fn push(&mut self, at: u64, lane: Lane, dst: NodeId, msg: Msg) {
        let seq = self.seq;
        self.seq += 1;
        let order = self.order_key(lane, at, seq);
        self.queue.push(Reverse(Event { at, lane, order, seq, dst, msg }));
    }

    /// Injects a message delivery at virtual time `at`.
    pub fn send_at(&mut self, at: u64, dst: NodeId, msg: Msg) {
        self.push(at, Lane::Message, dst, msg);
    }

    /// Schedules a timer to fire at virtual time `at`.
    pub fn timer_at(&mut self, at: u64, dst: NodeId, msg: Msg) {
        self.push(at, Lane::Timer, dst, msg);
    }

    /// Delivers every event with `at <= until` (including events enqueued
    /// while draining), advancing the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses a node outside `nodes`.
    pub fn run_until<N: Node>(&mut self, until: u64, nodes: &mut [N]) {
        while let Some(Reverse(ev)) = self.queue.peek().filter(|Reverse(e)| e.at <= until) {
            debug_assert!(ev.at >= self.now, "virtual time must be monotone");
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at;
            let node = &mut nodes[ev.dst as usize];
            let mut ctx = Ctx {
                queue: &mut self.queue,
                seq: &mut self.seq,
                policy: self.policy,
                now: ev.at,
                me: ev.dst,
            };
            match ev.lane {
                Lane::Message => {
                    let span = self.obs.span(ev.msg.label());
                    node.on_message(ev.msg, &mut ctx);
                    drop(span);
                }
                Lane::Timer => node.on_timer(ev.msg, &mut ctx),
            }
        }
        self.now = self.now.max(until);
    }

    /// Drains every undelivered event into serializable form, in delivery
    /// order (checkpoint capture). The queue is left empty.
    pub fn drain_pending(&mut self) -> Vec<SavedEvent> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(Reverse(ev)) = self.queue.pop() {
            out.push(SavedEvent {
                at: ev.at,
                dst: ev.dst,
                timer: ev.lane == Lane::Timer,
                msg: ev.msg,
            });
        }
        out
    }

    /// Re-enqueues saved events (checkpoint restore). Enqueue order becomes
    /// FIFO order, so feeding back [`Scheduler::drain_pending`]'s output
    /// reproduces the uninterrupted delivery order exactly.
    pub fn install_pending(&mut self, pending: Vec<SavedEvent>) {
        for ev in pending {
            let lane = if ev.timer { Lane::Timer } else { Lane::Message };
            self.push(ev.at, lane, ev.dst, ev.msg);
        }
    }
}

/// The per-delivery context a [`Node`] handler sends and schedules through.
pub struct Ctx<'a> {
    queue: &'a mut BinaryHeap<Reverse<Event>>,
    seq: &'a mut u64,
    policy: DeliveryPolicy,
    now: u64,
    me: NodeId,
}

impl Ctx<'_> {
    /// The node this event was delivered to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn push(&mut self, at: u64, lane: Lane, dst: NodeId, msg: Msg) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = *self.seq;
        *self.seq += 1;
        let order = match (self.policy, lane) {
            (DeliveryPolicy::Interleaved { seed }, Lane::Message) => {
                mix64(seed ^ at.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq)
            }
            _ => 0,
        };
        self.queue.push(Reverse(Event { at, lane, order, seq, dst, msg }));
    }

    /// Sends `msg` to `dst`, delivered at the current virtual time (after
    /// every already-queued same-time message under the lockstep policy).
    pub fn send(&mut self, dst: NodeId, msg: Msg) {
        self.push(self.now, Lane::Message, dst, msg);
    }

    /// Sends `msg` to `dst`, delivered at virtual time `at`.
    pub fn send_at(&mut self, at: u64, dst: NodeId, msg: Msg) {
        self.push(at, Lane::Message, dst, msg);
    }

    /// Schedules a timer at `dst` firing at virtual time `at` (timers fire
    /// after all messages of the same virtual time).
    pub fn timer_at(&mut self, at: u64, dst: NodeId, msg: Msg) {
        self.push(at, Lane::Timer, dst, msg);
    }
}

/// The protocol-agnostic liveness/participation event both protocol
/// observers consume — one enum instead of the former
/// `RoundObserver::on_participants` / `GossipObserver::on_wake_set` /
/// `GossipObserver::node_available` trio, so dynamics adapters and attack
/// trackers stop special-casing the protocol they ride on.
#[derive(Debug)]
pub enum LivenessEvent<'a> {
    /// The round's tentative acting set — FedAvg's sampled participants or
    /// gossip's wake set. Observers may clear entries to model availability
    /// (churn, stragglers, device dropout); setting entries is
    /// ignored-at-your-own-risk, the protocol honors the final mask as-is.
    ActingSet {
        /// Round index.
        round: u64,
        /// The mutable mask (index = node).
        mask: &'a mut [bool],
    },
    /// Availability probe for one node about to act on scheduled protocol
    /// work (gossip consults it before a due view refresh: an offline device
    /// cannot re-sample peers, so clearing `available` defers the refresh to
    /// the node's next available round). Observers may clear `available`;
    /// probes are only issued for work that is actually due.
    Probe {
        /// Round index.
        round: u64,
        /// The node being probed.
        node: u32,
        /// Availability answer (starts `true`; observers may clear).
        available: &'a mut bool,
    },
}

/// Uniform mid-run state capture: one trait the checkpoint codec drives
/// instead of per-type `export_state`/`restore_state` pairs. `State` is the
/// serializable snapshot type the codec already knows how to write.
pub trait Checkpointable {
    /// The serializable state snapshot.
    type State;

    /// Captures the current state (cheap, clone-based).
    fn export_state(&self) -> Self::State;

    /// Restores a previously captured state in place.
    ///
    /// # Panics
    ///
    /// Implementations panic when `state` is not aligned with the receiver
    /// (wrong node count, malformed tables).
    fn restore_state(&mut self, state: Self::State);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tape node: records every delivery as (now, me, label, timer).
    struct Tape {
        log: Vec<(u64, NodeId, &'static str, bool)>,
        relay: bool,
    }

    impl Node for &mut Tape {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            self.log.push((ctx.now(), ctx.me(), msg.label(), false));
            if self.relay {
                if let Msg::RoundStart { round } = msg {
                    // A causal chain: each hop enqueues the next at the same
                    // virtual time.
                    if round > 0 {
                        ctx.send(ctx.me(), Msg::RoundStart { round: round - 1 });
                    }
                }
            }
        }
        fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            self.log.push((ctx.now(), ctx.me(), msg.label(), true));
        }
    }

    fn tape() -> Tape {
        Tape { log: Vec::new(), relay: false }
    }

    #[test]
    fn lockstep_delivers_fifo_messages_before_timers() {
        let mut sched = Scheduler::new(DeliveryPolicy::Lockstep);
        sched.timer_at(5, 0, Msg::RoundEnd { round: 0 });
        sched.send_at(5, 0, Msg::GlobalBroadcast { round: 0 });
        sched.send_at(3, 0, Msg::RoundStart { round: 0 });
        sched.send_at(5, 0, Msg::ViewPush { round: 0, view: vec![] });
        let mut t = tape();
        sched.run_until(10, std::slice::from_mut(&mut &mut t));
        let labels: Vec<_> = t.log.iter().map(|&(at, _, l, timer)| (at, l, timer)).collect();
        assert_eq!(
            labels,
            vec![
                (3, "msg:round_start", false),
                (5, "msg:global_broadcast", false),
                (5, "msg:view_push", false),
                (5, "msg:round_end", true),
            ]
        );
        assert_eq!(sched.now(), 10);
        assert_eq!(sched.pending_len(), 0);
    }

    #[test]
    fn causal_same_time_chains_self_order() {
        let mut sched = Scheduler::new(DeliveryPolicy::Lockstep);
        sched.send_at(1, 0, Msg::RoundStart { round: 3 });
        let mut t = tape();
        t.relay = true;
        sched.run_until(1, std::slice::from_mut(&mut &mut t));
        assert_eq!(t.log.len(), 4, "each hop delivered at time 1");
        assert!(t.log.iter().all(|&(at, ..)| at == 1));
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sched = Scheduler::new(DeliveryPolicy::Lockstep);
        sched.send_at(2, 0, Msg::RoundStart { round: 0 });
        sched.send_at(7, 0, Msg::RoundStart { round: 1 });
        let mut t = tape();
        sched.run_until(4, std::slice::from_mut(&mut &mut t));
        assert_eq!(t.log.len(), 1);
        assert_eq!(sched.pending_len(), 1);
        sched.run_until(7, std::slice::from_mut(&mut &mut t));
        assert_eq!(t.log.len(), 2);
    }

    #[test]
    fn interleaved_permutes_same_time_messages_but_not_timers() {
        let deliver = |policy: DeliveryPolicy| -> Vec<&'static str> {
            let mut sched = Scheduler::new(policy);
            for (i, msg) in [
                Msg::ViewPush { round: 0, view: vec![] },
                Msg::GlobalBroadcast { round: 0 },
                Msg::MixTrain { round: 0, epochs: 1 },
                Msg::RoundStart { round: 0 },
            ]
            .into_iter()
            .enumerate()
            {
                let _ = i;
                sched.send_at(4, 0, msg);
            }
            sched.timer_at(4, 0, Msg::RoundEnd { round: 0 });
            let mut t = tape();
            sched.run_until(4, std::slice::from_mut(&mut &mut t));
            t.log.iter().map(|&(_, _, l, _)| l).collect()
        };
        let fifo = deliver(DeliveryPolicy::Lockstep);
        // Some seed produces a genuinely different message order (4! = 24
        // permutations; seeds 0..16 overwhelmingly cover a non-identity).
        let mut saw_permutation = false;
        for seed in 0..16 {
            let got = deliver(DeliveryPolicy::Interleaved { seed });
            // The timer still closes the slot.
            assert_eq!(*got.last().unwrap(), "msg:round_end");
            // Same multiset of messages.
            let mut a = fifo.clone();
            let mut b = got.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            if got != fifo {
                saw_permutation = true;
            }
        }
        assert!(saw_permutation, "no seed permuted the same-time messages");
        // And a fixed seed is deterministic.
        assert_eq!(
            deliver(DeliveryPolicy::Interleaved { seed: 9 }),
            deliver(DeliveryPolicy::Interleaved { seed: 9 })
        );
    }

    #[test]
    fn half_drained_queue_survives_save_restore() {
        // Drain half the events, save the rest, restore into a fresh
        // scheduler: the concatenated delivery order equals an uninterrupted
        // drain — the property checkpoint/resume across a non-empty event
        // queue rests on.
        let fill = |sched: &mut Scheduler| {
            for i in 0..12u64 {
                sched.send_at(i / 3, (i % 2) as NodeId, Msg::RoundStart { round: i });
                if i % 4 == 0 {
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    sched.timer_at(i / 3, 0, Msg::RefreshTimer { node: i as u32 });
                }
            }
        };
        let mut straight = Scheduler::new(DeliveryPolicy::Lockstep);
        fill(&mut straight);
        let mut full_log = tape();
        let mut nodes = [tape(), tape()];
        {
            let mut refs: Vec<&mut Tape> = nodes.iter_mut().collect();
            straight.run_until(10, &mut refs);
            for n in &mut nodes {
                full_log.log.append(&mut n.log);
            }
        }

        let mut first = Scheduler::new(DeliveryPolicy::Lockstep);
        fill(&mut first);
        let mut a = [tape(), tape()];
        {
            let mut refs: Vec<&mut Tape> = a.iter_mut().collect();
            first.run_until(1, &mut refs);
        }
        let pending = first.drain_pending();
        assert!(!pending.is_empty(), "queue must be non-empty at the cut");

        let mut resumed = Scheduler::new(DeliveryPolicy::Lockstep);
        resumed.install_pending(pending);
        let mut b = [tape(), tape()];
        {
            let mut refs: Vec<&mut Tape> = b.iter_mut().collect();
            resumed.run_until(10, &mut refs);
        }
        let mut spliced = tape();
        for n in a.iter_mut().chain(b.iter_mut()) {
            spliced.log.append(&mut n.log);
        }
        // Per-node logs concatenate; compare as multisets per (time, node).
        let canon = |mut log: Vec<(u64, NodeId, &'static str, bool)>| {
            log.sort();
            log
        };
        assert_eq!(canon(spliced.log), canon(full_log.log));
    }

    #[test]
    fn saved_events_roundtrip_preserves_payloads() {
        let mut sched = Scheduler::new(DeliveryPolicy::Lockstep);
        let model = SharedModel {
            owner: cia_data::UserId::new(7),
            round: 3,
            owner_emb: Some(vec![1.0, -2.5]),
            agg: vec![0.5; 4],
        };
        sched.send_at(9, 1, Msg::ModelPush { round: 3, sender: 0, dest: 1, model: model.clone() });
        sched.timer_at(8, 0, Msg::RefreshTimer { node: 4 });
        let pending = sched.drain_pending();
        assert_eq!(pending.len(), 2);
        // Delivery order: the earlier timer first.
        assert_eq!(
            pending[0],
            SavedEvent { at: 8, dst: 0, timer: true, msg: Msg::RefreshTimer { node: 4 } }
        );
        assert_eq!(pending[1].msg, Msg::ModelPush { round: 3, sender: 0, dest: 1, model });
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct BadNode;
        impl Node for BadNode {
            fn on_message(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.send_at(ctx.now() - 1, 0, Msg::RoundStart { round: 0 });
            }
        }
        let mut sched = Scheduler::new(DeliveryPolicy::Lockstep);
        sched.send_at(5, 0, Msg::RoundStart { round: 0 });
        sched.run_until(5, &mut [BadNode]);
    }
}
