//! Target relevance evaluation, including the Share-less adaptation.

use cia_models::parallel::par_map;
use cia_models::RelevanceScorer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Reusable catalog-sized buffers for [`ItemSetEvaluator::relevance_all`].
#[derive(Default)]
struct EvalScratch {
    scores: Vec<f32>,
    ranks: Vec<f32>,
    order: Vec<u32>,
}

thread_local! {
    /// Per-thread scratch: the `relevance_all` call sites run inside
    /// `par_chunks_mut` workers (one model per row), so a thread-local buffer
    /// makes per-model evaluation allocation-free once each worker is warm.
    static EVAL_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

/// Computes `Ŷ(Θ, V_target)` for every registered target given one
/// (momentum-averaged) model.
///
/// Implementations may batch across targets — the recsys evaluator scores the
/// whole catalog once per model under full sharing, turning the per-target
/// cost into a cheap mean. The MNIST experiment in `cia-experiments` provides
/// its own implementation, demonstrating that the attack is model-agnostic
/// (§VIII-E).
pub trait RelevanceEvaluator: Send + Sync {
    /// Number of registered targets.
    fn num_targets(&self) -> usize;

    /// Refresh per-target adversary state against current public parameters
    /// (trains the fictive embeddings of §IV-C under Share-less; a no-op
    /// under full sharing).
    fn prepare(&mut self, agg: &[f32], seed: u64);

    /// Relevance of one model for one target.
    fn relevance_one(&self, owner_emb: Option<&[f32]>, agg: &[f32], target: usize) -> f32;

    /// Relevance of one model for all targets, written into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `out.len() != num_targets()`.
    fn relevance_all(&self, owner_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]) {
        for (t, o) in out.iter_mut().enumerate() {
            *o = self.relevance_one(owner_emb, agg, t);
        }
    }
}

/// How `Ŷ(Θ, V_target)` aggregates per-item scores (§IV-B notes the
/// relevance "can be any recommendation quality metric").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelevanceKind {
    /// Mean raw score over the target items (the paper's default).
    #[default]
    MeanScore,
    /// Mean normalized rank of the target items in the model's full catalog
    /// ranking: `mean(1 − rank(i)/|V|)`. Invariant to monotone score
    /// transformations, so models whose scores saturate (late training, DP
    /// noise) remain comparable.
    MeanNormalizedRank,
}

/// The recommender-system evaluator: targets are item sets, relevance is the
/// mean per-item score assigned by the model (§IV-B).
///
/// Under the Share-less policy the received models carry no user embedding;
/// the adversary trains one fictive embedding `e_A` per target that "likes"
/// the target items and scores with it instead (§IV-C). Call
/// [`RelevanceEvaluator::prepare`] whenever fresh public parameters are
/// available; it is cheap and the embeddings are reused until the next call.
pub struct ItemSetEvaluator<S: RelevanceScorer> {
    scorer: S,
    targets: Vec<Vec<u32>>,
    share_less: bool,
    adversary_embs: Vec<Option<Vec<f32>>>,
    kind: RelevanceKind,
}

impl<S: RelevanceScorer> ItemSetEvaluator<S> {
    /// Creates the evaluator. Target item sets must be sorted and
    /// deduplicated; `share_less` selects the fictive-embedding adaptation.
    ///
    /// # Panics
    ///
    /// Panics if any target references an item outside the scorer's catalog.
    pub fn new(scorer: S, targets: Vec<Vec<u32>>, share_less: bool) -> Self {
        Self::with_relevance(scorer, targets, share_less, RelevanceKind::MeanScore)
    }

    /// Like [`ItemSetEvaluator::new`] with an explicit relevance
    /// aggregation. [`RelevanceKind::MeanNormalizedRank`] requires full
    /// sharing (the rank is computed once per model, not per target
    /// embedding).
    ///
    /// # Panics
    ///
    /// Panics if any target references an item outside the scorer's catalog,
    /// or rank relevance is combined with Share-less.
    pub fn with_relevance(
        scorer: S,
        targets: Vec<Vec<u32>>,
        share_less: bool,
        kind: RelevanceKind,
    ) -> Self {
        let n = scorer.num_items();
        for (i, t) in targets.iter().enumerate() {
            assert!(
                t.iter().all(|&it| it < n),
                "target {i} references an item outside the catalog"
            );
        }
        assert!(
            !(share_less && kind == RelevanceKind::MeanNormalizedRank),
            "rank relevance requires full sharing"
        );
        let adversary_embs = vec![None; targets.len()];
        ItemSetEvaluator { scorer, targets, share_less, adversary_embs, kind }
    }

    /// The registered target item sets.
    pub fn targets(&self) -> &[Vec<u32>] {
        &self.targets
    }

    /// The underlying scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// Whether the Share-less adaptation is active.
    pub fn is_share_less(&self) -> bool {
        self.share_less
    }

    /// The current fictive adversary embeddings (checkpoint access; empty of
    /// meaning under full sharing).
    pub fn adversary_embeddings(&self) -> &[Option<Vec<f32>>] {
        &self.adversary_embs
    }

    /// Restores fictive adversary embeddings captured by
    /// [`ItemSetEvaluator::adversary_embeddings`] (checkpoint resume).
    ///
    /// # Panics
    ///
    /// Panics if the table is not aligned with the registered targets.
    pub fn restore_adversary_embeddings(&mut self, embs: Vec<Option<Vec<f32>>>) {
        assert_eq!(embs.len(), self.targets.len(), "one embedding slot per target");
        self.adversary_embs = embs;
    }
}

impl<S: RelevanceScorer> RelevanceEvaluator for ItemSetEvaluator<S> {
    fn num_targets(&self) -> usize {
        self.targets.len()
    }

    fn prepare(&mut self, agg: &[f32], seed: u64) {
        if !self.share_less {
            return;
        }
        // Warm-start each fictive embedding from the previous refresh's
        // solution: public parameters drift slowly between refreshes, so a
        // short polish replaces full retraining (ROADMAP "share-less
        // fictive-embedding training" item).
        let (scorer, targets, prev) = (&self.scorer, &self.targets, &self.adversary_embs);
        self.adversary_embs = par_map(targets.len(), |t| {
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
            scorer.train_adversary_embedding(agg, &targets[t], prev[t].as_deref(), &mut rng)
        });
    }

    fn relevance_one(&self, owner_emb: Option<&[f32]>, agg: &[f32], target: usize) -> f32 {
        if self.kind == RelevanceKind::MeanNormalizedRank {
            let mut out = vec![0.0f32; self.targets.len()];
            self.relevance_all(owner_emb, agg, &mut out);
            return out[target];
        }
        let emb = if self.share_less { self.adversary_embs[target].as_deref() } else { owner_emb };
        self.scorer.mean_relevance(emb, agg, &self.targets[target])
    }

    fn relevance_all(&self, owner_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.targets.len(), "one output per target");
        if self.share_less {
            for (t, o) in out.iter_mut().enumerate() {
                *o = self.relevance_one(owner_emb, agg, t);
            }
            return;
        }
        // Fast path: score the catalog once into per-thread scratch (no
        // catalog-sized allocation per model), then aggregate per target.
        let n = self.scorer.num_items() as usize;
        EVAL_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let EvalScratch { scores, ranks, order } = scratch;
            scores.resize(n, 0.0);
            self.scorer.score_items(owner_emb, agg, scores);
            let per_item: &[f32] = match self.kind {
                RelevanceKind::MeanScore => scores,
                RelevanceKind::MeanNormalizedRank => {
                    // rank(i) = position in the descending score order.
                    order.clear();
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    order.extend(0..n as u32);
                    order.sort_by(|&a, &b| {
                        crate::metrics::rank_desc(
                            &(scores[a as usize], a),
                            &(scores[b as usize], b),
                        )
                    });
                    ranks.resize(n, 0.0);
                    for (pos, &item) in order.iter().enumerate() {
                        ranks[item as usize] = 1.0 - pos as f32 / n as f32;
                    }
                    ranks
                }
            };
            for (t, o) in out.iter_mut().enumerate() {
                let items = &self.targets[t];
                *o = if items.is_empty() {
                    0.0
                } else {
                    // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
                    items.iter().map(|&i| per_item[i as usize]).sum::<f32>() / items.len() as f32
                };
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::UserId;
    use cia_models::{GmfHyper, GmfSpec, Participant, SharingPolicy};

    fn trained_gmf() -> (GmfSpec, cia_models::SharedModel) {
        let spec = GmfSpec::new(40, 4, GmfHyper { lr: 0.1, ..GmfHyper::default() });
        let mut c = spec.build_client(UserId::new(0), vec![1, 2, 3], SharingPolicy::Full, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            c.train_local(&mut rng);
        }
        let snap = c.snapshot(0);
        (spec, snap)
    }

    #[test]
    fn relevance_all_matches_relevance_one() {
        let (spec, snap) = trained_gmf();
        let ev = ItemSetEvaluator::new(spec, vec![vec![1, 2], vec![10, 11, 12], vec![]], false);
        let mut out = vec![0.0f32; 3];
        ev.relevance_all(snap.owner_emb.as_deref(), &snap.agg, &mut out);
        for (t, &batched) in out.iter().enumerate() {
            let one = ev.relevance_one(snap.owner_emb.as_deref(), &snap.agg, t);
            assert!((batched - one).abs() < 1e-6, "target {t}: {batched} vs {one}");
        }
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn own_items_outscore_foreign_items() {
        let (spec, snap) = trained_gmf();
        let ev = ItemSetEvaluator::new(spec, vec![vec![1, 2, 3], vec![30, 31, 32]], false);
        let mut out = vec![0.0f32; 2];
        ev.relevance_all(snap.owner_emb.as_deref(), &snap.agg, &mut out);
        assert!(out[0] > out[1], "own {} !> foreign {}", out[0], out[1]);
    }

    #[test]
    fn share_less_uses_fictive_embeddings() {
        let (spec, snap) = trained_gmf();
        let mut ev = ItemSetEvaluator::new(spec, vec![vec![1, 2, 3]], true);
        ev.prepare(&snap.agg, 9);
        // Share-less models come without an embedding; scoring must work.
        let r = ev.relevance_one(None, &snap.agg, 0);
        assert!(r.is_finite());
        // The fictive embedding prefers its target over foreign items.
        let mut ev2 = ItemSetEvaluator::new(
            GmfSpec::new(40, 4, GmfHyper { lr: 0.1, ..GmfHyper::default() }),
            vec![vec![1, 2, 3], vec![30, 31, 32]],
            true,
        );
        ev2.prepare(&snap.agg, 9);
        let on = ev2.relevance_one(None, &snap.agg, 0);
        let emb0_on_foreign = {
            // score target 1's items with target 0's embedding by reusing
            // relevance_one on a fresh evaluator whose target 0 is foreign.
            let mut swapped = ItemSetEvaluator::new(
                GmfSpec::new(40, 4, GmfHyper { lr: 0.1, ..GmfHyper::default() }),
                vec![vec![30, 31, 32]],
                true,
            );
            // Train the same embedding (same seed/target index) then score.
            swapped.adversary_embs = vec![ev2.adversary_embs[0].clone()];
            swapped.relevance_one(None, &snap.agg, 0)
        };
        assert!(on > emb0_on_foreign, "on {on} !> foreign {emb0_on_foreign}");
    }

    #[test]
    #[should_panic(expected = "outside the catalog")]
    fn rejects_out_of_range_targets() {
        let spec = GmfSpec::new(10, 4, GmfHyper::default());
        let _ = ItemSetEvaluator::new(spec, vec![vec![99]], false);
    }

    #[test]
    fn rank_relevance_agrees_with_score_relevance_on_ordering() {
        let (spec, snap) = trained_gmf();
        let targets = vec![vec![1u32, 2, 3], vec![30, 31, 32]];
        let score_ev = ItemSetEvaluator::new(spec.clone(), targets.clone(), false);
        let rank_ev = ItemSetEvaluator::with_relevance(
            spec,
            targets,
            false,
            RelevanceKind::MeanNormalizedRank,
        );
        let mut s = vec![0.0f32; 2];
        let mut r = vec![0.0f32; 2];
        score_ev.relevance_all(snap.owner_emb.as_deref(), &snap.agg, &mut s);
        rank_ev.relevance_all(snap.owner_emb.as_deref(), &snap.agg, &mut r);
        // Both agree: the model's own items outrank the foreign ones.
        assert!(s[0] > s[1]);
        assert!(r[0] > r[1]);
        // Rank relevance is normalized to (0, 1].
        assert!(r.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn rank_relevance_is_invariant_to_score_scaling() {
        // Two models whose scores differ by a monotone transformation must
        // produce identical rank relevances. Simulate by comparing the rank
        // relevance computed from a model against itself — and checking that
        // relevance_one matches relevance_all (the shared-path contract).
        let (spec, snap) = trained_gmf();
        let rank_ev = ItemSetEvaluator::with_relevance(
            spec,
            vec![vec![1u32, 2], vec![20, 21]],
            false,
            RelevanceKind::MeanNormalizedRank,
        );
        let mut all = vec![0.0f32; 2];
        rank_ev.relevance_all(snap.owner_emb.as_deref(), &snap.agg, &mut all);
        for (t, &batched) in all.iter().enumerate() {
            let one = rank_ev.relevance_one(snap.owner_emb.as_deref(), &snap.agg, t);
            assert!((one - batched).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "rank relevance requires full sharing")]
    fn rank_relevance_rejects_share_less() {
        let spec = GmfSpec::new(10, 4, GmfHyper::default());
        let _ = ItemSetEvaluator::with_relevance(
            spec,
            vec![vec![1]],
            true,
            RelevanceKind::MeanNormalizedRank,
        );
    }
}
