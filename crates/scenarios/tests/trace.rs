//! Observability-layer guarantees at the runner level:
//!
//! * tracing is *always* active (the runner enables span detail on every
//!   scenario), yet `--no-timing` streams stay byte-identical and free of
//!   `trace` records — the determinism contract survives instrumentation;
//! * timed streams carry schema-valid `trace` records whose named phases
//!   cover the round wall-clock;
//! * the registry-backed `bytes_materialized` values are bit-identical to
//!   the pre-registry baseline captured from the old ad-hoc plumbing;
//! * after a kill/resume, trace records cover only post-resume rounds
//!   (recorder state is deliberately not checkpointed — see
//!   `cia_scenarios::checkpoint`);
//! * the Chrome trace-event export is well-formed.

use cia_data::presets::Scale;
use cia_scenarios::runner::{run_scenario, run_suite, validate_jsonl, RunOptions};
use cia_scenarios::{builtin_suite, chrome_trace, summarize, validate_chrome_trace};
use std::path::PathBuf;

/// Temp directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cia-trace-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn no_timing_streams_are_byte_identical_and_trace_free() {
    let suite = builtin_suite(Scale::Smoke, 42);
    let mut a = Vec::new();
    let outcomes = run_suite(&suite, &RunOptions::default(), &mut a).unwrap();
    let mut b = Vec::new();
    run_suite(&suite, &RunOptions::default(), &mut b).unwrap();
    assert_eq!(a, b, "untimed runs diverged with tracing active");
    let text = String::from_utf8(a).unwrap();
    assert!(!text.contains("\"type\":\"trace\""), "untimed stream leaked trace records");
    // The recorder still ran: every outcome drained per-round chunks with
    // spans in them (rounds + the final utility pass).
    for o in &outcomes {
        assert_eq!(o.traces.len() as u64, o.rounds_done + 1, "{}: missing chunks", o.name);
        assert!(
            o.traces.iter().all(|(_, c)| !c.spans.is_empty()),
            "{}: recorder produced no spans",
            o.name
        );
    }
}

#[test]
fn timed_streams_carry_schema_valid_trace_records_with_phase_coverage() {
    let suite = builtin_suite(Scale::Smoke, 42);
    let opts = RunOptions { timing: true, ..RunOptions::default() };
    let mut buf = Vec::new();
    run_suite(&suite, &opts, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    validate_jsonl(&text).unwrap();
    let reports = summarize(&text).unwrap();
    assert_eq!(reports.len(), 3, "one report per builtin scenario");
    for r in &reports {
        // One trace record per round plus the utility chunk.
        assert!(r.traced_rounds > 1, "{}: no trace records", r.scenario);
        assert!(r.round_us_total > 0, "{}: no round time traced", r.scenario);
        // Named phases must attribute the bulk of round wall-clock. The
        // acceptance bar for paper-scale runs is 95%; smoke rounds are
        // sub-millisecond, so leave slack for scheduler noise here.
        let cov = r.coverage().unwrap();
        assert!(cov > 0.5, "{}: phase coverage {:.1}% too low", r.scenario, 100.0 * cov);
        let phases: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        for expected in ["train", "evaluate", "emit", "other"] {
            assert!(phases.contains(&expected), "{}: missing phase {expected}", r.scenario);
        }
        assert!(
            r.counters.iter().any(|(n, v)| n == "clients_trained" && *v > 0),
            "{}: clients_trained missing",
            r.scenario
        );
    }
}

#[test]
fn registry_backed_bytes_materialized_matches_pre_registry_baseline() {
    // Equivalence pin: `bytes_materialized` values captured from the
    // builtin smoke suite (seed 42) *before* the ad-hoc byte plumbing moved
    // onto the `cia_obs` counter registry. The registry path must reproduce
    // the old JSONL values bit-identically.
    let suite = builtin_suite(Scale::Smoke, 42);
    let opts = RunOptions { timing: true, ..RunOptions::default() };
    let mut buf = Vec::new();
    run_suite(&suite, &opts, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let bytes_at = |scenario: &str, round: u64| -> u64 {
        for line in text.lines() {
            if line.contains("\"type\":\"round_eval\"")
                && line.contains(&format!("\"scenario\":\"{scenario}\""))
                && line.contains(&format!("\"round\":{round},"))
            {
                let field = "\"bytes_materialized\":";
                let start = line.find(field).expect("timed round_eval has the field") + field.len();
                let rest = &line[start..];
                let end = rest.find([',', '}']).unwrap();
                return rest[..end].parse().unwrap();
            }
        }
        panic!("no round_eval for {scenario} round {round}");
    };
    for round in [1, 3, 5, 7] {
        assert_eq!(bytes_at("baseline-static", round), 248_832);
    }
    let churn: Vec<u64> = [1, 3, 5, 7].iter().map(|&r| bytes_at("churn-20pct", r)).collect();
    assert_eq!(churn, vec![196_992, 196_992, 191_808, 196_992]);
    for round in [9, 19, 29, 39] {
        assert_eq!(bytes_at("colluding-sybils", round), 248_832);
    }
}

#[test]
fn resume_trace_covers_only_post_resume_rounds() {
    // colluding-sybils (GL, 40 rounds): kill at 20, resume to completion.
    let spec = builtin_suite(Scale::Smoke, 42).expanded().unwrap()[2].clone();
    let dir = TempDir::new("resume");
    let ckpt = RunOptions {
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_every: 10,
        ..RunOptions::default()
    };
    let mut partial = Vec::new();
    let killed = run_scenario(
        &spec,
        "t",
        &RunOptions { stop_after_rounds: Some(20), ..ckpt.clone() },
        &mut partial,
    )
    .unwrap();
    assert_eq!(killed.rounds_done, 20);
    assert!(killed.traces.iter().all(|(r, _)| *r < 20), "killed run traced beyond its stop");
    assert_eq!(killed.traces.len(), 20);

    let mut rest = Vec::new();
    let resumed =
        run_scenario(&spec, "t", &RunOptions { resume: true, ..ckpt }, &mut rest).unwrap();
    assert!(resumed.completed);
    // Fresh recorder after resume: chunks for rounds 20..40 plus the
    // utility pass at round == total, nothing from before the kill.
    assert!(
        resumed.traces.iter().all(|(r, _)| (20..=40).contains(r)),
        "resumed run reported pre-resume trace rounds"
    );
    assert_eq!(resumed.traces.first().map(|(r, _)| *r), Some(20));
    assert_eq!(resumed.traces.len(), 21);
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let suite = builtin_suite(Scale::Smoke, 42);
    let mut sink = std::io::sink();
    let outcomes = run_suite(&suite, &RunOptions::default(), &mut sink).unwrap();
    let doc = chrome_trace(&outcomes);
    let text = doc.render();
    let events = validate_chrome_trace(&text).unwrap();
    // At least one metadata event per scenario plus spans and counters.
    assert!(events > outcomes.len() * 10, "suspiciously few trace events: {events}");
    // Process names match the scenario names.
    for o in &outcomes {
        assert!(text.contains(&format!("\"name\":\"{}\"", o.name)), "{} missing", o.name);
    }
}
