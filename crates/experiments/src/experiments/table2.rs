//! Table II — CIA on FedRecs: Max AAC and Best-10% AAC for every
//! dataset × model configuration in the federated setting.

use crate::runner::{run_recsys, ModelKind, ProtocolKind, RunSpec};
use crate::tables::{pct, Table};
use cia_data::presets::{Preset, Scale};

/// The five dataset × model configurations of Table II (PRME is only
/// evaluated on the POI datasets, as in the paper).
pub const CONFIGS: [(Preset, ModelKind); 5] = [
    (Preset::Foursquare, ModelKind::Gmf),
    (Preset::Foursquare, ModelKind::Prme),
    (Preset::Gowalla, ModelKind::Gmf),
    (Preset::Gowalla, ModelKind::Prme),
    (Preset::MovieLens, ModelKind::Gmf),
];

/// Regenerates Table II.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        format!("Table II — CIA on FedRecs ({scale} scale); accuracy upper bound is 100%"),
        &["Dataset", "Random bound %", "Model", "Max AAC %", "Best 10% AAC %", "Utility"],
    );
    for (preset, model) in CONFIGS {
        let mut spec = RunSpec::new(preset, model, ProtocolKind::Fl, scale);
        spec.seed = seed;
        let r = run_recsys(&spec);
        t.row(vec![
            preset.name().to_string(),
            pct(r.attack.random_bound),
            model.name().to_string(),
            pct(r.attack.max_aac),
            pct(r.attack.best10_aac),
            format!("{}={:.3}", r.utility_metric, r.utility),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table2_beats_random_for_gmf() {
        let tables = run(Scale::Smoke, 7);
        assert_eq!(tables[0].rows.len(), 5);
        // GMF on MovieLens (last row): Max AAC above the random bound.
        let row = &tables[0].rows[4];
        let random: f64 = row[1].parse().unwrap();
        let aac: f64 = row[3].parse().unwrap();
        assert!(aac > random, "aac {aac} !> random {random}");
    }
}
