//! The rule engine: determinism & safety invariants as machine-checked
//! rules over the token stream.
//!
//! Every rule carries a stable ID (`D01`–`D07`), fires span-accurate
//! diagnostics, and honors the allow-comment escape hatch:
//!
//! ```text
//! // cia-lint: allow(D05, population sizes fit u32 by spec validation)
//! ```
//!
//! A trailing allow covers its own line; an allow on a comment-only line
//! covers the next line holding code (stacking across further comment
//! lines). The reason string is **mandatory** — an allow without one is
//! itself a violation (`L00`), and an allow that suppresses nothing is too
//! (`L01`), so stale annotations cannot accumulate.
//!
//! See `crates/lint/README.md` for the full rationale behind each rule.

use crate::lexer::{tokenize, Token, TokenKind};

/// Crates whose output feeds the byte-identical transcript contract. D01
/// (unordered containers) and D07 (float iterator sums) apply only here.
pub const DETERMINISTIC_PATH_CRATES: &[&str] =
    &["core", "federated", "gossip", "models", "scenarios", "runtime", "serve"];

/// Rule IDs in report order, with one-line summaries (mirrored in the
/// README and pinned by the fixture tests).
pub const RULES: &[(&str, &str)] = &[
    ("D01", "unordered container (HashMap/HashSet) in a deterministic-path crate"),
    ("D02", "direct Instant::now()/SystemTime::now() outside the cia-obs clock shim"),
    ("D03", "RNG constructed from OS entropy instead of an explicit seed"),
    ("D04", "unsafe block without a `// SAFETY:` comment on the preceding line"),
    ("D05", "narrowing `as` cast to a small integer type"),
    ("D06", "std::thread::spawn outside the parallel module and cia-serve"),
    ("D07", "float .sum::<f32/f64>() over an iterator in a deterministic-path crate"),
    ("L00", "malformed cia-lint allow comment (missing reason or unknown rule)"),
    ("L01", "allow comment that suppresses no violation"),
];

/// One finding: rule, location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`D01`…`D07`, `L00`, `L01`).
    pub rule: &'static str,
    /// 1-indexed line of the offending token.
    pub line: usize,
    /// 1-indexed column of the offending token.
    pub col: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The source line, trimmed — enough context to act without opening
    /// the file.
    pub snippet: String,
}

/// How a file relates to the rule set, derived from its workspace-relative
/// path. The engine itself never touches the filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass<'a> {
    /// Crate name (`core`, `serve`, …), `root` for `src/`, or the first
    /// path segment otherwise.
    pub krate: &'a str,
    /// D01/D07 apply.
    pub deterministic_path: bool,
    /// D02 exempt: the detail-gated clock shim lives here.
    pub is_obs: bool,
    /// D06 exempt: `cia-serve` owns its query thread.
    pub is_serve: bool,
    /// D06 exempt: the scoped-thread fan-out helper itself.
    pub is_parallel_module: bool,
}

impl<'a> FileClass<'a> {
    /// Classifies a `/`-separated workspace-relative path like
    /// `crates/gossip/src/sim.rs` or `src/lib.rs`.
    #[must_use]
    pub fn of(path: &'a str) -> Self {
        let mut segs = path.split('/');
        let krate = match segs.next() {
            Some("crates") => segs.next().unwrap_or(""),
            Some("src") => "root",
            Some(first) => first,
            None => "",
        };
        FileClass {
            krate,
            deterministic_path: DETERMINISTIC_PATH_CRATES.contains(&krate),
            is_obs: krate == "obs",
            is_serve: krate == "serve",
            is_parallel_module: path.ends_with("data/src/parallel.rs"),
        }
    }
}

/// A parsed `cia-lint: allow(RULE, reason)` comment.
#[derive(Debug)]
struct Allow {
    rule: String,
    /// The line of code this allow suppresses.
    target_line: usize,
    /// Where the comment itself sits (for L00/L01 diagnostics).
    line: usize,
    col: usize,
    used: std::cell::Cell<bool>,
    malformed: Option<&'static str>,
}

/// Lints one file's source. `path` must be workspace-relative with `/`
/// separators (it selects which rules apply); diagnostics come back sorted
/// by line then rule.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let class = FileClass::of(path);
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let comments: Vec<&Token> = tokens.iter().filter(|t| t.is_comment()).collect();
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: usize| -> String {
        lines.get(line.saturating_sub(1)).map_or(String::new(), |l| l.trim().to_string())
    };

    let allows = collect_allows(src, &comments, &code);
    let mut raw = Vec::new();
    check_determinism_rules(&class, src, &code, &mut raw);
    check_safety_comments(&class, src, &code, &comments, &mut raw);

    // Match raw violations against allows; an allow fires for its rule on
    // its target line and may cover several violations there (one comment
    // per line is the granularity).
    let mut out = Vec::new();
    for (rule, line, col, message) in raw {
        let allowed = allows
            .iter()
            .find(|a| a.malformed.is_none() && a.rule == rule && a.target_line == line);
        match allowed {
            Some(a) => a.used.set(true),
            None => out.push(Diagnostic { rule, line, col, message, snippet: snippet(line) }),
        }
    }
    for a in &allows {
        if let Some(why) = a.malformed {
            out.push(Diagnostic {
                rule: "L00",
                line: a.line,
                col: a.col,
                message: format!(
                    "malformed allow comment ({why}); expected `cia-lint: allow(RULE, reason)`"
                ),
                snippet: snippet(a.line),
            });
        } else if !a.used.get() {
            out.push(Diagnostic {
                rule: "L01",
                line: a.line,
                col: a.col,
                message: format!(
                    "allow({}) suppresses nothing on line {} — remove the stale annotation",
                    a.rule, a.target_line
                ),
                snippet: snippet(a.line),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Extracts and validates every allow comment, resolving each to the code
/// line it covers.
fn collect_allows(src: &str, comments: &[&Token], code: &[&Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let text = c.text(src);
        // Doc comments are prose for humans — a directive quoted there
        // (e.g. this module's own docs) is documentation, not an allow.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("cia-lint:") else { continue };
        let directive = text[pos + "cia-lint:".len()..].trim_start();
        let (rule, malformed) = parse_allow(directive);
        // A comment with code before it on its own line is trailing and
        // covers that line; otherwise it covers the next line holding code.
        let trailing = code.iter().any(|t| t.line == c.line && t.start < c.start);
        let target_line = if trailing {
            c.line
        } else {
            code.iter().map(|t| t.line).filter(|&l| l > c.line_end).min().unwrap_or(c.line_end + 1)
        };
        allows.push(Allow {
            rule,
            target_line,
            line: c.line,
            col: c.col,
            used: std::cell::Cell::new(false),
            malformed,
        });
    }
    allows
}

/// Parses `allow(RULE, reason)` out of a directive body. Returns the rule
/// ID (best-effort on malformed input) and an error description if any.
fn parse_allow(directive: &str) -> (String, Option<&'static str>) {
    let Some(rest) = directive.strip_prefix("allow(") else {
        return (String::new(), Some("directive is not `allow(…)`"));
    };
    // The reason runs to the *last* closing paren, so it may itself
    // mention calls like `len()` without ending the directive early.
    let Some(end) = rest.rfind(')') else {
        return (String::new(), Some("missing closing `)`"));
    };
    let body = &rest[..end];
    let (rule, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim().to_string(), why.trim()),
        None => (body.trim().to_string(), ""),
    };
    if !RULES.iter().any(|(id, _)| *id == rule) {
        return (rule, Some("unknown rule ID"));
    }
    if reason.is_empty() {
        return (rule, Some("a reason is required"));
    }
    (rule, None)
}

/// Is `code[i]` part of a `use` declaration? D01 anchors on type *usage*;
/// flagging the import line as well would just demand a second annotation
/// for the same fact.
fn in_use_decl(code: &[&Token], src: &str, i: usize) -> bool {
    code[..i]
        .iter()
        .rev()
        .take_while(|t| {
            let txt = t.text(src);
            !(txt == ";" || txt == "}")
        })
        .any(|t| t.text(src) == "use")
}

/// D01–D03 and D05–D07: token-pattern rules.
#[allow(clippy::too_many_lines)]
fn check_determinism_rules(
    class: &FileClass,
    src: &str,
    code: &[&Token],
    out: &mut Vec<(&'static str, usize, usize, String)>,
) {
    const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    const ENTROPY_IDENTS: &[&str] =
        &["from_entropy", "thread_rng", "OsRng", "from_os_rng", "getrandom", "EntropyRng"];
    let text = |i: usize| code.get(i).map_or("", |t| t.text(src));
    let is = |i: usize, s: &str| text(i) == s;
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident && !(tok.kind == TokenKind::Punct && is(i, ".")) {
            continue;
        }
        let t = tok.text(src);
        // D01 — unordered containers anywhere in a deterministic-path
        // crate. Over-approximate on purpose: iteration order escapes
        // through folds too indirect to see lexically, so the *type* is
        // the contraband and every appearance needs a written order-safety
        // argument (or a BTree swap).
        if class.deterministic_path
            && (t == "HashMap" || t == "HashSet")
            && !in_use_decl(code, src, i)
        {
            out.push((
                "D01",
                tok.line,
                tok.col,
                format!(
                    "`{t}` in deterministic-path crate `{}`: unordered iteration can leak into \
                     transcripts — use BTreeMap/BTreeSet or allowlist with an \
                     order-canonicalization reason",
                    class.krate
                ),
            ));
        }
        // D02 — wall-clock reads outside the obs shim.
        if !class.is_obs
            && (t == "Instant" || t == "SystemTime")
            && is(i + 1, ":")
            && is(i + 2, ":")
            && is(i + 3, "now")
        {
            out.push((
                "D02",
                tok.line,
                tok.col,
                format!(
                    "direct `{t}::now()`: route timing through cia-obs's detail-gated clock \
                     (Recorder spans) so `--no-timing` transcripts stay byte-identical"
                ),
            ));
        }
        // D03 — entropy-derived randomness.
        if ENTROPY_IDENTS.contains(&t) {
            out.push((
                "D03",
                tok.line,
                tok.col,
                format!(
                    "`{t}`: every RNG must derive from an explicit seed — OS entropy breaks \
                         transcript reproducibility"
                ),
            ));
        }
        // D05 — narrowing integer casts. The 32-bit checkpoint-hash
        // collision fixed in PR 5 was exactly this: a silent `as u32`
        // truncation of a 64-bit hash.
        if t == "as" && tok.kind == TokenKind::Ident {
            let target = text(i + 1);
            if NARROW_INTS.contains(&target) {
                out.push((
                    "D05",
                    tok.line,
                    tok.col,
                    format!(
                        "narrowing `as {target}` cast: use `{target}::try_from` or allowlist \
                         with the invariant that bounds the source"
                    ),
                ));
            }
        }
        // D06 — unmanaged threads.
        if !class.is_serve
            && !class.is_parallel_module
            && t == "thread"
            && is(i + 1, ":")
            && is(i + 2, ":")
            && is(i + 3, "spawn")
        {
            out.push((
                "D06",
                tok.line,
                tok.col,
                "`std::thread::spawn` outside cia-data::parallel and cia-serve: unmanaged \
                 threads bypass the deterministic fan-out helpers"
                    .to_string(),
            ));
        }
        // D07 — float iterator sums on the deterministic path.
        if class.deterministic_path
            && is(i, ".")
            && is(i + 1, "sum")
            && is(i + 2, ":")
            && is(i + 3, ":")
            && is(i + 4, "<")
            && (is(i + 5, "f32") || is(i + 5, "f64"))
        {
            out.push((
                "D07",
                tok.line,
                tok.col,
                format!(
                    "float `.sum::<{}>()` in a deterministic-path crate: allowlist with a note \
                     fixing the reduction order (or restructure into a fixed-order fold)",
                    text(i + 5)
                ),
            ));
        }
    }
}

/// D04 — every `unsafe {` block needs a `// SAFETY:` comment immediately
/// above (or earlier on the same line). A reasoned `allow(D04, …)` works
/// too, but the SAFETY convention is the expected fix.
fn check_safety_comments(
    _class: &FileClass,
    src: &str,
    code: &[&Token],
    comments: &[&Token],
    out: &mut Vec<(&'static str, usize, usize, String)>,
) {
    for (i, tok) in code.iter().enumerate() {
        if tok.text(src) != "unsafe" || tok.kind != TokenKind::Ident {
            continue;
        }
        // Only blocks: `unsafe fn`/`unsafe impl` declare obligations for
        // callers, they don't discharge them.
        if code.get(i + 1).map(|t| t.text(src)) != Some("{") {
            continue;
        }
        // Accept `SAFETY:` anywhere in the contiguous comment run ending
        // on the preceding line (a multi-line `//` block states it once),
        // or earlier on the `unsafe` line itself.
        let mut covered = comments
            .iter()
            .any(|c| c.line == tok.line && c.start < tok.start && c.text(src).contains("SAFETY:"));
        let mut line = tok.line;
        while !covered && line > 1 {
            line -= 1;
            let Some(c) = comments.iter().find(|c| c.line_end == line) else { break };
            covered = c.text(src).contains("SAFETY:");
            // A trailing comment after code ends the run (examine, then stop).
            if code.iter().any(|t| t.line == line) {
                break;
            }
            line = line.saturating_sub(c.line_end - c.line);
        }
        if !covered {
            out.push((
                "D04",
                tok.line,
                tok.col,
                "`unsafe` block without a `// SAFETY:` comment on the preceding line — state \
                 the invariant that makes this sound"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_source(path, src).iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn file_classification() {
        let c = FileClass::of("crates/gossip/src/sim.rs");
        assert!(c.deterministic_path && !c.is_obs && !c.is_serve);
        assert!(FileClass::of("crates/obs/src/lib.rs").is_obs);
        assert!(FileClass::of("crates/data/src/parallel.rs").is_parallel_module);
        assert!(!FileClass::of("src/lib.rs").deterministic_path);
        assert_eq!(FileClass::of("src/lib.rs").krate, "root");
    }

    #[test]
    fn d01_fires_only_on_deterministic_path() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(rules_at("crates/core/src/x.rs", src), [("D01", 1), ("D01", 1)]);
        assert_eq!(rules_at("crates/experiments/src/x.rs", src), []);
    }

    #[test]
    fn d01_skips_use_declarations() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) { m.len(); }";
        assert_eq!(rules_at("crates/serve/src/x.rs", src), [("D01", 2)]);
    }

    #[test]
    fn d02_exempts_obs() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_at("crates/runtime/src/x.rs", src), [("D02", 1)]);
        assert_eq!(rules_at("crates/obs/src/lib.rs", src), []);
    }

    #[test]
    fn d04_satisfied_by_preceding_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", bad), [("D04", 1)]);
        let good = "// SAFETY: g has no preconditions\nfn f() {\n unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", good), [("D04", 3)]);
        let good2 = "fn f() {\n // SAFETY: g has no preconditions\n unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", good2), []);
    }

    #[test]
    fn d04_accepts_multi_line_comment_runs() {
        let good = "fn f() {\n // SAFETY: the pointer is valid\n // for the whole call.\n unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", good), []);
        let block = "/* SAFETY: sound because\n   reasons span lines */\nfn f() { unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", block), []);
        // An unrelated comment run without the marker still fires.
        let bad = "fn f() {\n // Just a note\n // across two lines.\n unsafe { g() } }";
        assert_eq!(rules_at("crates/data/src/x.rs", bad), [("D04", 4)]);
    }

    #[test]
    fn d04_ignores_unsafe_fn_declarations() {
        assert_eq!(rules_at("crates/data/src/x.rs", "unsafe fn g() {}"), []);
    }

    #[test]
    fn d05_only_narrow_targets() {
        assert_eq!(rules_at("src/lib.rs", "fn f(x: u64) -> u32 { x as u32 }"), [("D05", 1)]);
        assert_eq!(rules_at("src/lib.rs", "fn f(x: u32) -> u64 { x as u64 }"), []);
        assert_eq!(rules_at("src/lib.rs", "fn f(x: u32) -> usize { x as usize }"), []);
    }

    #[test]
    fn d06_exempts_serve_and_parallel() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_at("crates/runtime/src/x.rs", src), [("D06", 1)]);
        assert_eq!(rules_at("crates/serve/src/lib.rs", src), []);
        assert_eq!(rules_at("crates/data/src/parallel.rs", src), []);
    }

    #[test]
    fn d07_needs_deterministic_path() {
        let src = "fn f(v: &[f32]) -> f32 { v.iter().sum::<f32>() }";
        assert_eq!(rules_at("crates/models/src/x.rs", src), [("D07", 1)]);
        assert_eq!(rules_at("crates/data/src/x.rs", src), []);
    }

    #[test]
    fn trailing_allow_suppresses() {
        let src =
            "fn f(x: u64) -> u32 { x as u32 } // cia-lint: allow(D05, hash is 32-bit by design)";
        assert_eq!(rules_at("src/lib.rs", src), []);
    }

    #[test]
    fn preceding_allow_suppresses_across_comment_lines() {
        let src = "// cia-lint: allow(D05, bounded by catalog size)\n// Another note.\nfn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(rules_at("src/lib.rs", src), []);
    }

    #[test]
    fn allow_reason_may_contain_parens() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // cia-lint: allow(D05, bounded by len() at build time)";
        assert_eq!(rules_at("src/lib.rs", src), []);
    }

    #[test]
    fn allow_without_reason_is_l00() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // cia-lint: allow(D05)";
        assert_eq!(rules_at("src/lib.rs", src), [("D05", 1), ("L00", 1)]);
    }

    #[test]
    fn unknown_rule_is_l00() {
        let src = "fn f() {} // cia-lint: allow(D99, no such rule)";
        assert_eq!(rules_at("src/lib.rs", src), [("L00", 1)]);
    }

    #[test]
    fn unused_allow_is_l01() {
        let src = "// cia-lint: allow(D05, nothing here narrows)\nfn f() {}";
        assert_eq!(rules_at("src/lib.rs", src), [("L01", 1)]);
    }

    #[test]
    fn violations_in_strings_and_comments_do_not_fire() {
        let src = "// mentions HashMap and Instant::now()\nfn f() -> &'static str { \"x as u32; thread::spawn\" }";
        assert_eq!(rules_at("crates/core/src/x.rs", src), []);
    }

    #[test]
    fn one_allow_covers_all_same_rule_hits_on_its_line() {
        let src = "fn f(x: u64, y: u64) -> (u32, u32) { (x as u32, y as u32) } // cia-lint: allow(D05, both bounded by n < 2^32)";
        assert_eq!(rules_at("src/lib.rs", src), []);
    }
}
