//! Cross-crate integration tests: data → models → protocols → attack →
//! metrics, exercised through the public facade.

use community_inference::prelude::*;

fn community_setup(
    users: usize,
    k: usize,
    seed: u64,
) -> (Vec<Vec<u32>>, GroundTruth, GmfSpec, Vec<cia_models::GmfClient>) {
    let data = SyntheticConfig::builder()
        .users(users)
        .items(150)
        .communities(6)
        .interactions_per_user(15)
        .seed(seed)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, 20, seed).unwrap();
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec = GmfSpec::new(150, 8, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();
    (split.train_sets().to_vec(), truth, spec, clients)
}

#[test]
fn fl_cia_end_to_end_beats_random() {
    let users = 36;
    let k = 5;
    let (train_sets, truth, spec, clients) = community_setup(users, k, 3);
    let evaluator = ItemSetEvaluator::new(spec, train_sets, false);
    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    let mut attack = FlCia::new(
        CiaConfig { k, beta: 0.99, eval_every: 2, seed: 0 },
        evaluator,
        users,
        truths,
        owners,
    );
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig { rounds: 16, local_epochs: 2, seed: 5, ..Default::default() },
    );
    sim.run(&mut attack);
    let out = attack.outcome();
    assert!(
        out.max_aac > 2.0 * out.random_bound,
        "FL CIA {} vs random {}",
        out.max_aac,
        out.random_bound
    );
}

#[test]
fn gossip_cia_stays_within_coverage_bound() {
    let users = 30;
    let k = 4;
    let (train_sets, truth, spec, clients) = community_setup(users, k, 7);
    let evaluator = ItemSetEvaluator::new(spec, train_sets, false);
    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let mut attack = GlCiaAllPlacements::new(
        CiaConfig { k, beta: 0.9, eval_every: 10, seed: 0 },
        evaluator,
        users,
        truths,
    );
    let mut sim =
        GossipSim::new(clients, GossipConfig { rounds: 40, seed: 9, ..Default::default() });
    sim.run(&mut attack);
    let out = attack.outcome();
    // Per-round AAC can never exceed that round's observation coverage.
    for p in &out.history {
        assert!(
            p.aac <= p.upper_bound + 1e-9,
            "round {}: aac {} above coverage bound {}",
            p.round,
            p.aac,
            p.upper_bound
        );
    }
}

#[test]
fn dp_defense_reduces_fl_leakage() {
    let users = 36;
    let k = 5;
    let run = |noisy: bool| {
        let (train_sets, truth, spec, clients) = community_setup(users, k, 11);
        let evaluator = ItemSetEvaluator::new(spec, train_sets, false);
        let truths: Vec<_> =
            (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
        let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
        let mut attack = FlCia::new(
            CiaConfig { k, beta: 0.99, eval_every: 2, seed: 0 },
            evaluator,
            users,
            truths,
            owners,
        );
        let mut sim = FedAvg::new(
            clients,
            FedAvgConfig { rounds: 12, local_epochs: 2, seed: 5, ..Default::default() },
        );
        if noisy {
            sim.set_update_transform(Box::new(DpMechanism::new(DpConfig {
                clip: 2.0,
                noise_multiplier: 2.0,
            })));
        }
        sim.run(&mut attack);
        attack.outcome().max_aac
    };
    let clean = run(false);
    let noisy = run(true);
    assert!(noisy < clean, "DP should reduce leakage: {clean} -> {noisy}");
}

#[test]
fn share_less_hides_user_embeddings_but_attack_still_runs() {
    let users = 24;
    let k = 4;
    let data = SyntheticConfig::builder()
        .users(users)
        .items(120)
        .communities(4)
        .interactions_per_user(12)
        .seed(13)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, 20, 13).unwrap();
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec = GmfSpec::new(120, 8, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(
                UserId::new(u as u32),
                items.clone(),
                SharingPolicy::ShareLess { tau: 0.3 },
                u as u64,
            )
        })
        .collect();
    let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), true);
    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    let mut attack = FlCia::new(
        CiaConfig { k, beta: 0.99, eval_every: 2, seed: 0 },
        evaluator,
        users,
        truths,
        owners,
    );
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig { rounds: 8, local_epochs: 2, seed: 5, ..Default::default() },
    );
    sim.run(&mut attack);
    let out = attack.outcome();
    assert!(out.max_aac.is_finite());
    assert!(!out.history.is_empty());
}

#[test]
fn accountant_and_mechanism_compose() {
    let dp = DpMechanism::with_target_epsilon(10.0, 1e-6, 20, 1.0, 2.0);
    let eps = dp.epsilon(20, 1.0, 1e-6);
    assert!(eps <= 10.0 && eps > 5.0, "calibrated eps {eps}");
    // The accountant is consistent with the mechanism's own report.
    let direct = RdpAccountant::new(dp.config().noise_multiplier as f64, 20, 1.0).epsilon(1e-6);
    assert!((direct - eps).abs() < 1e-9);
}

#[test]
fn prme_pipeline_runs_in_gossip() {
    let data = SyntheticConfig::builder()
        .users(20)
        .items(100)
        .communities(4)
        .interactions_per_user(12)
        .sequences(true)
        .seed(17)
        .build()
        .generate();
    let split = LeaveOneOut::with_holdout(&data, 3, 20, 17).unwrap();
    let truth = GroundTruth::from_train_sets(split.train_sets(), 3);
    let spec = PrmeSpec::new(100, 8, PrmeHyper::default());
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .zip(split.train_sequences())
        .enumerate()
        .map(|(u, (items, seq))| {
            spec.build_client(
                UserId::new(u as u32),
                items.clone(),
                seq.clone(),
                SharingPolicy::Full,
                u as u64,
            )
        })
        .collect();
    let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
    let truths: Vec<_> = (0..20u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let mut attack = GlCiaAllPlacements::new(
        CiaConfig { k: 3, beta: 0.9, eval_every: 10, seed: 0 },
        evaluator,
        20,
        truths,
    );
    let mut sim =
        GossipSim::new(clients, GossipConfig { rounds: 30, seed: 19, ..Default::default() });
    sim.run(&mut attack);
    assert!(attack.outcome().max_aac.is_finite());
}
