//! Recommendation quality metrics.
//!
//! The paper reports hit ratio (HR@K) for GMF and F1-score for PRME (§V-C).
//! NDCG is included for completeness (it is standard alongside HR in the NCF
//! evaluation protocol).

use serde::{Deserialize, Serialize};

/// Rank of the positive among `[positive] + negatives`, 0-based: the number
/// of negatives scoring strictly higher, plus half the ties (rounded down).
/// The fractional tie handling keeps degenerate models — e.g. DP-noised ones
/// whose scores all saturate to the same value — from scoring free hits.
pub fn rank_of_primary(pos_score: f32, neg_scores: &[f32]) -> usize {
    let above = neg_scores.iter().filter(|&&s| s > pos_score).count();
    let ties = neg_scores.iter().filter(|&&s| s == pos_score).count();
    above + ties / 2
}

/// Whether the positive lands in the top `k` of `[positive] + negatives`.
///
/// ```
/// use cia_models::hit_ratio;
/// assert!(hit_ratio(0.9, &[0.1, 0.5, 0.95], 2));
/// assert!(!hit_ratio(0.9, &[0.91, 0.92, 0.95], 2));
/// ```
pub fn hit_ratio(pos_score: f32, neg_scores: &[f32], k: usize) -> bool {
    rank_of_primary(pos_score, neg_scores) < k
}

/// NDCG@K of the single positive: `1 / log2(rank + 2)` when it hits, else 0.
pub fn ndcg(pos_score: f32, neg_scores: &[f32], k: usize) -> f64 {
    let rank = rank_of_primary(pos_score, neg_scores);
    if rank < k {
        1.0 / ((rank + 2) as f64).log2()
    } else {
        0.0
    }
}

/// F1@K between a recommended list (already truncated to length ≤ K) and the
/// relevant set.
///
/// ```
/// use cia_models::f1_at_k;
/// let f1 = f1_at_k(&[1, 2, 3, 4], &[2, 9]);
/// let p = 1.0 / 4.0;
/// let r = 1.0 / 2.0;
/// assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
/// ```
pub fn f1_at_k(recommended: &[u32], relevant: &[u32]) -> f64 {
    if recommended.is_empty() || relevant.is_empty() {
        return 0.0;
    }
    let hits = recommended.iter().filter(|i| relevant.contains(i)).count();
    if hits == 0 {
        return 0.0;
    }
    let p = hits as f64 / recommended.len() as f64;
    let r = hits as f64 / relevant.len() as f64;
    2.0 * p * r / (p + r)
}

/// Accumulates per-user ranking evaluations into mean HR@K / NDCG@K.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankedEval {
    hits: usize,
    ndcg_sum: f64,
    n: usize,
}

impl RankedEval {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one user's evaluation.
    pub fn push(&mut self, pos_score: f32, neg_scores: &[f32], k: usize) {
        if hit_ratio(pos_score, neg_scores, k) {
            self.hits += 1;
        }
        self.ndcg_sum += ndcg(pos_score, neg_scores, k);
        self.n += 1;
    }

    /// Number of users recorded.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no users were recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean hit ratio.
    pub fn hr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.hits as f64 / self.n as f64
        }
    }

    /// Mean NDCG.
    pub fn ndcg(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.ndcg_sum / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_greater_plus_half_ties() {
        assert_eq!(rank_of_primary(0.5, &[0.4, 0.5, 0.6]), 1);
        assert_eq!(rank_of_primary(1.0, &[]), 0);
        assert_eq!(rank_of_primary(0.0, &[0.1, 0.2]), 2);
        // All-equal scores place the positive mid-pack, not on top.
        assert_eq!(rank_of_primary(1.0, &[1.0; 50]), 25);
    }

    #[test]
    fn hit_ratio_boundary() {
        // rank 2 with k = 2 misses; k = 3 hits.
        assert!(!hit_ratio(0.1, &[0.2, 0.3], 2));
        assert!(hit_ratio(0.1, &[0.2, 0.3], 3));
    }

    #[test]
    fn ndcg_decreases_with_rank() {
        let top = ndcg(1.0, &[0.0, 0.0], 10);
        let second = ndcg(0.5, &[0.6, 0.0], 10);
        assert!((top - 1.0).abs() < 1e-12);
        assert!(second < top && second > 0.0);
        assert_eq!(ndcg(0.0, &[0.5, 0.6], 2), 0.0);
    }

    #[test]
    fn f1_edge_cases() {
        assert_eq!(f1_at_k(&[], &[1]), 0.0);
        assert_eq!(f1_at_k(&[1], &[]), 0.0);
        assert_eq!(f1_at_k(&[1, 2], &[3, 4]), 0.0);
        assert!((f1_at_k(&[1, 2], &[1, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_means() {
        let mut acc = RankedEval::new();
        acc.push(1.0, &[0.0], 1); // hit at rank 0
        acc.push(0.0, &[1.0], 1); // miss
        assert_eq!(acc.len(), 2);
        assert!((acc.hr() - 0.5).abs() < 1e-12);
        assert!(acc.ndcg() > 0.0 && acc.ndcg() < 1.0);
        assert!(!acc.is_empty());
        assert_eq!(RankedEval::new().hr(), 0.0);
    }
}
