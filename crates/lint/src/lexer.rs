//! A minimal, panic-free Rust lexer.
//!
//! The scanner produces just enough token structure for the rule engine:
//! identifiers (keywords included — the engine matches on text), numeric
//! literals, string/char literals, lifetimes, comments, and single-character
//! punctuation. It is deliberately forgiving: unterminated strings and
//! comments extend to end-of-file, unknown bytes become punctuation, and no
//! input — truncated, bit-flipped, or otherwise mangled — may ever panic it
//! (pinned by the property tests in `tests/properties.rs`).
//!
//! Working on tokens instead of raw text is what keeps the rules honest: a
//! `HashMap` inside a string literal or a doc comment is *not* an identifier
//! and never reaches the rule engine.

/// What a token is. Classification is coarse on purpose — rules only need
/// to tell code identifiers apart from literal/comment text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`as`, `unsafe`, `HashMap`, …).
    Ident,
    /// `'a` — distinguished from char literals by lookahead.
    Lifetime,
    /// Integer or float literal, suffix included (`1_000u32`, `1.5e-3`).
    Number,
    /// String, raw string, byte string, or char literal.
    Literal,
    /// `// …` (doc comments included).
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to end-of-file.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One token: kind plus byte span and 1-indexed line/column of its start.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-indexed line of the first byte.
    pub line: usize,
    /// 1-indexed column (in characters) of the first byte.
    pub col: usize,
    /// 1-indexed line of the last byte (differs from `line` only for
    /// multi-line tokens: block comments and multi-line strings).
    pub line_end: usize,
}

impl Token {
    /// The token's text within `src`. Spans always lie on char boundaries.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for both comment kinds.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Total: every retained character belongs to exactly one
/// token; whitespace is dropped. Never panics.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer { src, chars: src.char_indices().peekable(), line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(&(start, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let kind = if c == '/' && self.peek_second() == Some('/') {
                self.line_comment()
            } else if c == '/' && self.peek_second() == Some('*') {
                self.block_comment()
            } else if c == 'r' || c == 'b' {
                // Possible raw/byte string prefix; otherwise an identifier.
                self.prefixed_literal_or_ident(c)
            } else if c == '"' {
                self.string('"')
            } else if c == '\'' {
                self.char_or_lifetime()
            } else if c.is_ascii_digit() {
                self.number()
            } else if c == '_' || c.is_alphabetic() {
                self.ident()
            } else {
                self.bump();
                TokenKind::Punct
            };
            let end = self.offset();
            tokens.push(Token { kind, start, end, line, col, line_end: self.line });
        }
        tokens
    }

    /// Byte offset of the next unconsumed char (or end of input).
    fn offset(&mut self) -> usize {
        self.chars.peek().map_or(self.src.len(), |&(i, _)| i)
    }

    fn peek_second(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next().map(|(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(&(_, c)) = self.chars.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        self.bump_while(|c| c != '\n');
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // `/`
        self.bump(); // `*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('*') if self.chars.peek().map(|&(_, c)| c) == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some('/') if self.chars.peek().map(|&(_, c)| c) == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
                None => break, // Unterminated: the comment swallows the rest.
            }
        }
        TokenKind::BlockComment
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — or a plain identifier
    /// starting with `r`/`b`. Anything that doesn't commit to a quoted form
    /// (including raw identifiers like `r#fn`) lexes as an identifier.
    fn prefixed_literal_or_ident(&mut self, first: char) -> TokenKind {
        let mut it = self.chars.clone();
        it.next(); // The `r`/`b` itself.
        let mut prefix_len = 1usize;
        let mut raw = first == 'r';
        if first == 'b' && it.peek().map(|&(_, c)| c) == Some('r') {
            it.next();
            prefix_len = 2;
            raw = true;
        }
        let mut hashes = 0usize;
        while it.peek().map(|&(_, c)| c) == Some('#') {
            hashes += 1;
            it.next();
        }
        let next = it.peek().map(|&(_, c)| c);
        let commits = match next {
            // `#`s are only legal on the raw forms.
            Some('"') => raw || hashes == 0,
            // `b'x'` — a byte char.
            Some('\'') => first == 'b' && prefix_len == 1 && hashes == 0,
            _ => false,
        };
        if !commits {
            self.bump();
            return self.ident();
        }
        for _ in 0..prefix_len + hashes {
            self.bump();
        }
        match next {
            Some('"') if raw => self.raw_string(hashes),
            Some(q) => self.string(q),  // `b"…"` keeps escapes; `"` too.
            None => TokenKind::Literal, // Unreachable: `commits` needs a quote.
        }
    }

    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        self.bump(); // Opening `"`.
        loop {
            match self.bump() {
                Some('"') => {
                    let mut it = self.chars.clone();
                    let closed = (0..hashes).all(|_| it.next().map(|(_, c)| c) == Some('#'));
                    if closed {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return TokenKind::Literal;
                    }
                }
                Some(_) => {}
                None => return TokenKind::Literal, // Unterminated.
            }
        }
    }

    fn string(&mut self, quote: char) -> TokenKind {
        self.bump(); // Opening quote.
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // Whatever is escaped, even the quote.
                }
                Some(c) if c == quote => return TokenKind::Literal,
                Some(_) => {}
                None => return TokenKind::Literal, // Unterminated.
            }
        }
    }

    /// `'x'`, `'\n'`, `'\u{1F600}'` are char literals; `'a` (no closing
    /// quote nearby) is a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let mut it = self.chars.clone();
        it.next(); // `'`
        let first = it.next().map(|(_, c)| c);
        let second = it.next().map(|(_, c)| c);
        match first {
            // `'\…'` is always a char literal.
            Some('\\') => self.string('\''),
            // `'x'` — closing quote right after one char.
            Some(_) if second == Some('\'') => self.string('\''),
            // `'ident` with no closing quote: a lifetime.
            Some(c) if c == '_' || c.is_alphabetic() => {
                self.bump(); // `'`
                self.bump_while(|c| c == '_' || c.is_alphanumeric());
                TokenKind::Lifetime
            }
            // Stray quote (possibly at EOF): treat as an (empty) literal.
            _ => self.string('\''),
        }
    }

    fn number(&mut self) -> TokenKind {
        self.bump(); // First digit.
                     // Digits, underscores, radix/exponent letters and type suffixes.
        self.bump_while(|c| c == '_' || c.is_ascii_alphanumeric());
        // Fractional part — but `1..n` is a range, not a float.
        if self.chars.peek().map(|&(_, c)| c) == Some('.') && self.peek_second() != Some('.') {
            let frac_is_digit = {
                let mut it = self.chars.clone();
                it.next();
                it.peek().is_some_and(|&(_, c)| c.is_ascii_digit())
            };
            if frac_is_digit {
                self.bump(); // `.`
                self.bump_while(|c| c == '_' || c.is_ascii_alphanumeric());
            }
        }
        // Signed exponent (`1e-5`): the sign follows an `e`/`E` we already
        // consumed as part of the alphanumeric run.
        if matches!(self.chars.peek().map(|&(_, c)| c), Some('+' | '-')) {
            let prev_is_exp = self
                .offset()
                .checked_sub(1)
                .and_then(|i| self.src.get(i..i + 1))
                .is_some_and(|s| s.eq_ignore_ascii_case("e"));
            if prev_is_exp {
                self.bump();
                self.bump_while(|c| c == '_' || c.is_ascii_alphanumeric());
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        self.bump_while(|c| c == '_' || c.is_alphanumeric());
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds("let x = y as u32;");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "y", "as", "u32", ";"]);
        assert!(got.iter().take(2).all(|(k, _)| *k == TokenKind::Ident));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let got = kinds(r#"let s = "HashMap as u32";"#);
        assert!(got.iter().all(|(k, t)| *k != TokenKind::Ident || !t.contains("HashMap")));
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Literal).count(), 1);
    }

    #[test]
    fn raw_strings_and_bytes() {
        for src in [r##"r#"as u32"#"##, r#"b"as u32""#, r#"br"x""#, "b'x'"] {
            let got = kinds(src);
            assert_eq!(got.len(), 1, "{src}: {got:?}");
            assert_eq!(got[0].0, TokenKind::Literal, "{src}");
        }
    }

    #[test]
    fn comments_keep_their_text() {
        let got = kinds("// SAFETY: fine\nunsafe {}");
        assert_eq!(got[0].0, TokenKind::LineComment);
        assert!(got[0].1.contains("SAFETY"));
        assert_eq!(got[1].1, "unsafe");
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("/* a /* b */ c */ x");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, TokenKind::BlockComment);
        assert_eq!(got[1].1, "x");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Literal).count(), 1);
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let got = kinds("0..10 1.5e-3 0xff_u32 1_000i64");
        let nums: Vec<&str> =
            got.iter().filter(|(k, _)| *k == TokenKind::Number).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "0xff_u32", "1_000i64"]);
    }

    #[test]
    fn unterminated_everything_reaches_eof_without_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b\"x", "1e"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "a\n  b";
        let toks = tokenize(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multibyte_input_is_tolerated() {
        let toks = tokenize("let s = \"héllo\"; // ünïcode\nλ");
        assert!(!toks.is_empty());
    }
}
