//! No-op `Serialize`/`Deserialize` derive macros for the vendored `serde`
//! stand-in: the traits are blanket-implemented in `serde`, so the derives
//! only need to *accept* the syntax (including `#[serde(...)]` helper
//! attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to
/// nothing (the trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands
/// to nothing (the trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
